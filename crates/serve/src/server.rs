//! The online API server: polled accept loop, a small worker pool, and
//! the seven routes (`/events`, `/rerank`, `/aggregates`, `/metrics`,
//! `/healthz`, `/snapshot`, `/slo`).
//!
//! The transport follows the hardened `rapid_obs::serve` pattern — a
//! nonblocking listener polled every 10 ms under a stop flag, per-stream
//! read/write timeouts, bounded headers and bodies — extended with POST
//! bodies, keep-alive connections, and a worker pool so one slow client
//! cannot stall ingestion. Every parsed request passes the
//! `serve.request` fault site (`rapid_faults::should_drop`): an armed
//! `io-error` drops the connection, `delay` stalls it, and `panic` is
//! caught by the per-request `catch_unwind` and answered as a 500 with
//! the server still up — the same chaos contract as the telemetry
//! server.
//!
//! Every parsed request is also one [`rapid_obs::trace`] unit: a
//! [`TraceGuard`](rapid_obs::trace::TraceGuard) minted *before* the
//! fault site (so injected faults carry the trace id), finished by RAII
//! on every exit path, answered with an `X-Rapid-Trace-Id` header, and
//! marked as an error on drops and panics so the availability SLO sees
//! them. `/rerank` additionally arms tail-exemplar capture against
//! `serve.rerank_ms` — a request breaching the configured threshold
//! retains its full stage tree (serve → model → exec → ops).
//!
//! Telemetry: every response increments
//! `serve.http.<endpoint>.<status>`, `/events` maintains
//! `serve.events_{accepted,replayed,rejected}` and the `serve.users`
//! gauge, and `/rerank` records `serve.rerank_ms`. All of it lands in
//! the global registry, so `/snapshot` (NDJSON) and `/aggregates`
//! (single JSON object) expose the serve counters without Prometheus
//! text parsing, and `/slo` evaluates the objectives [`start`] declares
//! (rerank latency and availability) with burn-rate windows.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::Value;

use crate::api;
use crate::http::{
    response_bytes, response_bytes_with_headers, status_code, ConnBuf, ReadOutcome, Request,
};
use crate::model::{RerankError, ServeModel};
use crate::state::UserStore;

/// Listener poll cadence while idle (matches `rapid_obs::serve`).
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Per-stream read/write timeout. Also bounds how long a worker waits
/// for the next keep-alive request before recycling the connection.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Default cap on request bodies (1 MiB): batched event ingestion fits
/// comfortably; anything larger answers `413`.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Server shape knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Request body cap in bytes.
    pub max_body: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_body: MAX_BODY_BYTES,
        }
    }
}

/// Everything the handlers share: the loaded model and the live user
/// store.
pub struct AppState {
    /// The checkpoint-loaded serving stack.
    pub model: ServeModel,
    /// Live per-user state written by `/events`.
    pub store: UserStore,
}

impl AppState {
    /// Wraps a booted model with a fresh user store sized to its world.
    pub fn new(model: ServeModel) -> Self {
        let ds = model.dataset();
        let store = UserStore::new(16, ds.users.len(), ds.num_topics());
        Self { model, store }
    }
}

/// A running server: joinable accept + worker threads and a stop flag.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals every thread to stop and joins them.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The serving SLOs, declared at boot so `/slo`, `/metrics`, and the
/// bench gate all evaluate the same objectives: rerank p99 under 50 ms
/// at 99% compliance, and 99.9% availability (no 5xx/drops), both over
/// 1 m / 5 m / 1 h burn-rate windows.
fn declare_slos() {
    let reg = rapid_obs::global();
    reg.declare_slo(rapid_obs::SloDef {
        name: "rerank_latency".to_string(),
        path: "req/rerank".to_string(),
        threshold_ms: 50.0,
        objective: 0.99,
        windows_s: vec![60, 300, 3600],
    });
    reg.declare_slo(rapid_obs::SloDef {
        name: "rerank_availability".to_string(),
        path: "req/rerank".to_string(),
        threshold_ms: 0.0,
        objective: 0.999,
        windows_s: vec![60, 300, 3600],
    });
}

/// Binds and starts the server over `state`.
///
/// # Errors
/// Propagates bind/configuration failures from the listener socket.
pub fn start(state: Arc<AppState>, cfg: &ServerConfig) -> std::io::Result<ServeHandle> {
    declare_slos();
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let mut threads = Vec::with_capacity(cfg.workers + 1);
    for _ in 0..cfg.workers.max(1) {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        let max_body = cfg.max_body;
        threads.push(std::thread::spawn(move || {
            worker_loop(&rx, &state, &stop, max_body)
        }));
    }
    {
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            accept_loop(&listener, &tx, &stop);
        }));
    }
    rapid_obs::event!(
        rapid_obs::Level::Info,
        "serve",
        "serving /events /rerank /aggregates /metrics /healthz /snapshot /slo on http://{addr}"
    );
    Ok(ServeHandle {
        addr,
        stop,
        threads,
    })
}

fn accept_loop(listener: &TcpListener, tx: &mpsc::Sender<TcpStream>, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
                let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                let _ = stream.set_nodelay(true);
                if tx.send(stream).is_err() {
                    return; // all workers gone; shutting down
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

fn worker_loop(
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    state: &AppState,
    stop: &AtomicBool,
    max_body: usize,
) {
    while !stop.load(Ordering::SeqCst) {
        let next = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv_timeout(Duration::from_millis(50))
        };
        match next {
            Ok(stream) => handle_connection(stream, state, stop, max_body),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serves one (possibly keep-alive) connection until the peer closes,
/// framing fails, or the server stops.
fn handle_connection(mut stream: TcpStream, state: &AppState, stop: &AtomicBool, max_body: usize) {
    let mut conn = ConnBuf::new();
    while !stop.load(Ordering::SeqCst) {
        let outcome = conn.read_request(&mut stream, max_body);
        let (request, framing_reply) = match outcome {
            ReadOutcome::Request(r) => (Some(r), None),
            ReadOutcome::Closed => return,
            ReadOutcome::HeadersTooLarge => (
                None,
                Some(("431 Request Header Fields Too Large", "headers too large")),
            ),
            ReadOutcome::BodyTooLarge => (None, Some(("413 Payload Too Large", "body too large"))),
            ReadOutcome::Malformed(why) => (None, Some(("400 Bad Request", why))),
        };
        if let Some((status, why)) = framing_reply {
            // Framing errors poison the byte stream, so answer and
            // close rather than trying to resynchronise.
            count(request_key(None), status);
            let bytes = response_bytes(status, "application/json", &api::error_body(why), false);
            let _ = stream.write_all(&bytes);
            return;
        }
        let Some(request) = request else { return };

        // One trace per request, minted *before* the fault site so
        // injected faults are stamped with this request's trace id.
        // The guard finishes by RAII on every exit below — drop, panic,
        // write failure — leaving the `req/<endpoint>` SLO record.
        let mut trace = rapid_obs::trace::start_request(request_key(Some(&request)));

        // Chaos site: armed `io-error` entries drop the connection
        // mid-dialogue, `panic` entries are caught below, `delay`
        // entries stall the worker — all deterministic under the
        // installed plan's seed.
        let dropped = catch_unwind(AssertUnwindSafe(|| {
            rapid_faults::should_drop("serve.request")
        }));
        match dropped {
            Ok(false) => {}
            Ok(true) => {
                trace.mark_error();
                rapid_obs::global().counter_add("serve.requests_dropped", 1);
                return;
            }
            Err(_) => {
                trace.mark_error();
                respond_panic(&mut stream, &request, trace.trace_id());
                return;
            }
        }

        let keep_alive = request.keep_alive;
        let r0 = rapid_obs::clock::now();
        let r0_us = rapid_obs::clock::wall_micros();
        let handled = catch_unwind(AssertUnwindSafe(|| route(&request, state, &mut trace)));
        rapid_obs::trace::record_stage("serve/route", r0_us, r0.elapsed());
        match handled {
            Ok((status, content_type, body)) => {
                if status_code(status) >= 500 {
                    trace.mark_error();
                }
                count(request_key(Some(&request)), status);
                let w0 = rapid_obs::clock::now();
                let w0_us = rapid_obs::clock::wall_micros();
                let bytes = match trace.trace_id() {
                    Some(id) => response_bytes_with_headers(
                        status,
                        content_type,
                        &body,
                        keep_alive,
                        &[("X-Rapid-Trace-Id", &format!("{id:016x}"))],
                    ),
                    None => response_bytes(status, content_type, &body, keep_alive),
                };
                let wrote = stream.write_all(&bytes).is_ok();
                rapid_obs::trace::record_stage("serve/respond", w0_us, w0.elapsed());
                if !wrote || !keep_alive {
                    return;
                }
            }
            Err(_) => {
                trace.mark_error();
                respond_panic(&mut stream, &request, trace.trace_id());
                return;
            }
        }
    }
}

/// Answers a caught handler panic with a 500 and closes the connection
/// (its framing state is no longer trustworthy). The trace id still
/// rides the response so the failed request stays correlatable.
fn respond_panic(stream: &mut TcpStream, request: &Request, trace_id: Option<u64>) {
    let status = "500 Internal Server Error";
    rapid_obs::global().counter_add("serve.panics", 1);
    count(request_key(Some(request)), status);
    let body = api::error_body("handler panicked");
    let bytes = match trace_id {
        Some(id) => response_bytes_with_headers(
            status,
            "application/json",
            &body,
            false,
            &[("X-Rapid-Trace-Id", &format!("{id:016x}"))],
        ),
        None => response_bytes(status, "application/json", &body, false),
    };
    let _ = stream.write_all(&bytes);
}

/// The counter key segment for a request's endpoint (unknown paths
/// collapse into `other` so hostile scans cannot mint counters).
fn request_key(request: Option<&Request>) -> &'static str {
    match request.map(|r| r.path.as_str()) {
        Some("/events") => "events",
        Some("/rerank") => "rerank",
        Some("/aggregates") => "aggregates",
        Some("/metrics") => "metrics",
        Some("/healthz") => "healthz",
        Some("/snapshot") => "snapshot",
        Some("/slo") => "slo",
        _ => "other",
    }
}

fn count(endpoint: &str, status: &str) {
    rapid_obs::global().counter_add(&format!("serve.http.{endpoint}.{}", status_code(status)), 1);
}

/// Dispatches one parsed request to its handler. `trace` is this
/// request's live guard; handlers that want tail-exemplar capture arm
/// it here.
fn route(
    request: &Request,
    state: &AppState,
    trace: &mut rapid_obs::trace::TraceGuard,
) -> (&'static str, &'static str, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            rapid_obs::global().snapshot().to_prometheus(),
        ),
        ("GET", "/snapshot") => (
            "200 OK",
            "application/x-ndjson",
            rapid_obs::global().snapshot().to_ndjson(),
        ),
        ("GET", "/aggregates") => ("200 OK", "application/json", aggregates_body(state)),
        ("GET", "/slo") => (
            "200 OK",
            "application/json",
            rapid_obs::slo_json(&rapid_obs::global().snapshot()),
        ),
        ("POST", "/events") => handle_events(request, state),
        ("POST", "/rerank") => handle_rerank(request, state, trace),
        ("GET", "/events" | "/rerank")
        | ("POST", "/healthz" | "/metrics" | "/snapshot" | "/aggregates" | "/slo") => (
            "405 Method Not Allowed",
            "application/json",
            api::error_body("method not allowed"),
        ),
        _ => (
            "404 Not Found",
            "application/json",
            api::error_body(
                "not found; try /events /rerank /aggregates /metrics /healthz /snapshot /slo",
            ),
        ),
    }
}

fn handle_events(request: &Request, state: &AppState) -> (&'static str, &'static str, String) {
    let reg = rapid_obs::global();
    let events = match api::parse_events(&request.body) {
        Ok(events) => events,
        Err(why) => {
            reg.counter_add("serve.events_rejected", 1);
            return ("400 Bad Request", "application/json", api::error_body(&why));
        }
    };
    let ds = state.model.dataset();
    let mut accepted = 0u64;
    let mut replayed = 0u64;
    for e in &events {
        let item = (e.item % ds.items.len() as u64) as usize;
        let coverage = e.click.then(|| ds.items[item].coverage.as_slice());
        match state.store.apply_event(e.user, item, coverage, e.seq) {
            crate::state::EventOutcome::Applied => accepted += 1,
            crate::state::EventOutcome::Replayed => replayed += 1,
        }
    }
    reg.counter_add("serve.events_accepted", accepted);
    reg.counter_add("serve.events_replayed", replayed);
    reg.gauge_set("serve.users", state.store.len() as f64);
    (
        "200 OK",
        "application/json",
        api::events_body(accepted, replayed),
    )
}

fn handle_rerank(
    request: &Request,
    state: &AppState,
    trace: &mut rapid_obs::trace::TraceGuard,
) -> (&'static str, &'static str, String) {
    let reg = rapid_obs::global();
    // Arm tail capture: if this request's total latency breaches the
    // configured threshold, its stage tree is retained as an exemplar
    // on the serve.rerank_ms histogram.
    trace.set_latency_hist("serve.rerank_ms");
    let p0 = rapid_obs::clock::now();
    let p0_us = rapid_obs::clock::wall_micros();
    let parsed = api::parse_rerank(&request.body);
    rapid_obs::trace::record_stage_nested("serve/parse", p0_us, p0.elapsed());
    let req = match parsed {
        Ok(r) => r,
        Err(why) => {
            return ("400 Bad Request", "application/json", api::error_body(&why));
        }
    };
    let k = req.k.unwrap_or(state.model.config().list_len);
    let user_state = state.store.get(req.user);
    if user_state.is_none() {
        // Unknown users are a documented cold start, not an error.
        reg.counter_add("serve.cold_users", 1);
    }
    let t0 = rapid_obs::clock::now();
    match state.model.rerank(req.user, user_state.as_ref(), k) {
        Ok(r) => {
            reg.observe("serve.rerank_ms", t0.elapsed().as_secs_f64() * 1e3);
            ("200 OK", "application/json", api::rerank_body(req.user, &r))
        }
        Err(RerankError::EmptyList) => (
            "400 Bad Request",
            "application/json",
            api::error_body("k must be at least 1"),
        ),
        Err(RerankError::ListTooLong { max }) => (
            "400 Bad Request",
            "application/json",
            api::error_body(&format!("k exceeds the served maximum of {max}")),
        ),
    }
}

/// One JSON object summarising the serve counters, user store, and
/// rerank latency quantiles — the smoke job's assertion surface.
fn aggregates_body(state: &AppState) -> String {
    let snap = rapid_obs::global().snapshot();
    let http: Vec<(String, Value)> = snap
        .counters()
        .filter_map(|(name, v)| {
            name.strip_prefix("serve.http.")
                .map(|key| (key.to_string(), Value::U64(v)))
        })
        .collect();
    let latency = match snap.histogram("serve.rerank_ms") {
        Some(h) => Value::Object(vec![
            ("count".to_string(), Value::U64(h.count())),
            ("p50_ms".to_string(), Value::F64(h.quantile(0.5))),
            ("p99_ms".to_string(), Value::F64(h.quantile(0.99))),
            ("max_ms".to_string(), Value::F64(h.max())),
        ]),
        None => Value::Null,
    };
    let obj = Value::Object(vec![
        ("users".to_string(), Value::U64(state.store.len() as u64)),
        (
            "model_epochs_done".to_string(),
            Value::U64(state.model.epochs_done),
        ),
        (
            "events".to_string(),
            Value::Object(vec![
                (
                    "accepted".to_string(),
                    Value::U64(snap.counter("serve.events_accepted")),
                ),
                (
                    "replayed".to_string(),
                    Value::U64(snap.counter("serve.events_replayed")),
                ),
                (
                    "rejected".to_string(),
                    Value::U64(snap.counter("serve.events_rejected")),
                ),
            ]),
        ),
        ("http".to_string(), Value::Object(http)),
        ("rerank_latency".to_string(), latency),
        (
            "degraded".to_string(),
            Value::Object(vec![
                (
                    "degraded_requests".to_string(),
                    Value::U64(snap.counter("exec.degraded_requests")),
                ),
                (
                    "fallback_requests".to_string(),
                    Value::U64(snap.counter("exec.fallback_requests")),
                ),
                (
                    "panics".to_string(),
                    Value::U64(snap.counter("serve.panics")),
                ),
                (
                    "requests_dropped".to_string(),
                    Value::U64(snap.counter("serve.requests_dropped")),
                ),
            ]),
        ),
    ]);
    serde_json::to_string(&obj).unwrap_or_else(|_| "{}".to_string())
}
