//! Live per-user serving state: a sharded, lock-striped store keyed by
//! external user id.
//!
//! External ids are arbitrary `u64`s from clients — the store maps each
//! onto a *base profile* of the generated world (stable hash modulo the
//! dataset's user count) and layers mutable online state on top: a
//! capped recent-item history, an EMA topic-preference vector updated
//! from clicked items' coverage rows, and a replay cursor. `/events`
//! writes this state; `/rerank` reads it and blends the live preference
//! into the initial-ranker scores, so ingested behavior genuinely moves
//! subsequent rankings.
//!
//! Sharding bounds contention under the open-loop load harness: each
//! external id hashes to one of [`UserStore`]'s `RwLock`ed shard maps,
//! so concurrent requests for different users rarely collide. All
//! hashing is [`hash64`] (SplitMix64) — deterministic across processes,
//! which the kill-and-restart test relies on.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;

/// Recent items retained per user; older entries are evicted FIFO.
pub const HISTORY_CAP: usize = 32;

/// EMA step for the live topic-preference vector: one click moves the
/// preference 30% of the way toward the clicked item's coverage row.
const PREF_ALPHA: f32 = 0.3;

/// SplitMix64: a stable, seedless 64-bit mixer. Used for user→shard and
/// user→base-profile mapping so placements replay identically across
/// process restarts (std's `DefaultHasher` is randomly keyed).
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mutable online state for one external user.
#[derive(Debug, Clone)]
pub struct UserState {
    /// Index of the base profile in the generated dataset.
    pub base_user: usize,
    /// EMA topic-preference over clicked items' coverage rows (all
    /// zeros until the first click).
    pub pref: Vec<f32>,
    /// Recent item ids, oldest first, capped at [`HISTORY_CAP`].
    pub history: Vec<usize>,
    /// Events applied to this user (replays excluded).
    pub events: u64,
    /// Highest event sequence number applied so far.
    pub last_seq: u64,
}

/// What [`UserStore::apply_event`] did with an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventOutcome {
    /// State was updated.
    Applied,
    /// The event's `seq` was at or behind the user's cursor — a replayed
    /// delivery; state is unchanged.
    Replayed,
}

/// The sharded user store.
#[derive(Debug)]
pub struct UserStore {
    shards: Vec<RwLock<HashMap<u64, UserState>>>,
    len: AtomicUsize,
    num_topics: usize,
    num_base_users: usize,
}

impl UserStore {
    /// A store with `shards` lock stripes, mapping external users onto
    /// `num_base_users` base profiles with `num_topics`-dim preferences.
    pub fn new(shards: usize, num_base_users: usize, num_topics: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            len: AtomicUsize::new(0),
            num_topics,
            num_base_users: num_base_users.max(1),
        }
    }

    /// The base-profile index an external id maps to (stable).
    pub fn base_user(&self, user: u64) -> usize {
        (hash64(user) % self.num_base_users as u64) as usize
    }

    fn shard(&self, user: u64) -> &RwLock<HashMap<u64, UserState>> {
        // A second mix decorrelates shard choice from base-profile
        // choice.
        let i = (hash64(user ^ 0x5eed) % self.shards.len() as u64) as usize;
        &self.shards[i]
    }

    /// Applies one behavior event. `clicked_coverage` is the item's
    /// topic-coverage row when the event was a click (`None` for plain
    /// impressions, which only extend the history). `seq`, when present,
    /// enables replay detection: an event at or behind the user's cursor
    /// is dropped as [`EventOutcome::Replayed`].
    pub fn apply_event(
        &self,
        user: u64,
        item: usize,
        clicked_coverage: Option<&[f32]>,
        seq: Option<u64>,
    ) -> EventOutcome {
        let base_user = self.base_user(user);
        let mut shard = match self.shard(user).write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let state = shard.entry(user).or_insert_with(|| {
            self.len.fetch_add(1, Ordering::Relaxed);
            UserState {
                base_user,
                pref: vec![0.0; self.num_topics],
                history: Vec::new(),
                events: 0,
                last_seq: 0,
            }
        });
        if let Some(s) = seq {
            if state.events > 0 && s <= state.last_seq {
                return EventOutcome::Replayed;
            }
            state.last_seq = s;
        }
        state.events += 1;
        if state.history.len() >= HISTORY_CAP {
            state.history.remove(0);
        }
        state.history.push(item);
        if let Some(cov) = clicked_coverage {
            for (p, &c) in state.pref.iter_mut().zip(cov) {
                *p = (1.0 - PREF_ALPHA) * *p + PREF_ALPHA * c;
            }
        }
        EventOutcome::Applied
    }

    /// A copy of one user's state, if any events arrived for them.
    pub fn get(&self, user: u64) -> Option<UserState> {
        let shard = match self.shard(user).read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        shard.get(&user).cloned()
    }

    /// Number of distinct users holding state.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` when no user holds state.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> UserStore {
        UserStore::new(8, 40, 5)
    }

    #[test]
    fn events_create_state_and_update_preference() {
        let s = store();
        assert!(s.is_empty());
        assert_eq!(
            s.apply_event(7, 3, Some(&[1.0, 0.0, 0.0, 0.0, 0.0]), Some(1)),
            EventOutcome::Applied
        );
        let u = s.get(7).unwrap();
        assert_eq!(u.history, vec![3]);
        assert_eq!(u.events, 1);
        assert!((u.pref[0] - 0.3).abs() < 1e-6, "EMA step toward coverage");
        assert_eq!(s.len(), 1);
        assert!(s.get(8).is_none());
    }

    #[test]
    fn replayed_sequence_numbers_do_not_mutate_state() {
        let s = store();
        s.apply_event(7, 3, None, Some(5));
        assert_eq!(s.apply_event(7, 4, None, Some(5)), EventOutcome::Replayed);
        assert_eq!(s.apply_event(7, 4, None, Some(2)), EventOutcome::Replayed);
        let u = s.get(7).unwrap();
        assert_eq!(u.history, vec![3], "replay must not extend history");
        assert_eq!(u.events, 1);
        assert_eq!(s.apply_event(7, 4, None, Some(6)), EventOutcome::Applied);
        assert_eq!(s.get(7).unwrap().history, vec![3, 4]);
    }

    #[test]
    fn history_is_capped() {
        let s = store();
        for i in 0..(HISTORY_CAP + 10) {
            s.apply_event(1, i, None, None);
        }
        let u = s.get(1).unwrap();
        assert_eq!(u.history.len(), HISTORY_CAP);
        assert_eq!(u.history[0], 10, "oldest items evicted first");
        assert_eq!(u.events, (HISTORY_CAP + 10) as u64);
    }

    #[test]
    fn base_user_mapping_is_stable_and_in_range() {
        let s = store();
        for user in [0u64, 1, 99, u64::MAX] {
            let b = s.base_user(user);
            assert!(b < 40);
            assert_eq!(b, s.base_user(user), "mapping must be deterministic");
        }
    }

    #[test]
    fn concurrent_writers_count_distinct_users_exactly() {
        let s = UserStore::new(4, 10, 3);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = &s;
                scope.spawn(move || {
                    for u in 0..100u64 {
                        s.apply_event(t * 100 + u, 0, None, None);
                    }
                });
            }
        });
        assert_eq!(s.len(), 400);
    }
}
