//! The serving model: a checkpoint-loaded RAPID re-ranker plus the
//! initial ranker and generated world it scores against.
//!
//! The server never trains the re-ranker itself — it *hot-loads* a v2
//! training checkpoint (any `Checkpointer` artifact) into a
//! freshly-shaped [`Rapid`], so a crashed trainer's last atomic write
//! is exactly what the next server boot serves. [`train_artifact`]
//! produces such an artifact for benches, tests, and CI smoke runs by
//! running the normal `rapid-eval` pipeline with checkpointing on.
//!
//! The request path is initial-ranker → RAPID:
//!
//! 1. a deterministic per-user candidate set is drawn from the world,
//! 2. the initial ranker scores candidates against the user's *base
//!    profile*, blended with the live topic preference accumulated by
//!    `/events` ([`ServeConfig::pref_boost`]),
//! 3. the score-ordered list goes through
//!    [`ReRanker::rerank_batch`] — the `rapid-exec` degraded-parallel
//!    path, so serving inherits its panic-isolation ladder and
//!    `exec.degraded_requests` / `exec.fallback_requests` counters.

use std::io;
use std::path::Path;

use rapid_autograd::{Checkpoint, CheckpointConfig};
use rapid_core::{Rapid, RapidConfig};
use rapid_data::{generate, DataConfig, Dataset, Flavor};
use rapid_eval::{ExperimentConfig, Pipeline, RankerKind, Scale};
use rapid_rankers::{InitialRanker, SvmRank, SvmRankConfig};
use rapid_rerankers::{PreparedList, ReRanker, RerankInput};

use crate::state::{hash64, UserState};

/// Shape and behavior of the serving stack. Train-time and boot-time
/// configs must match: the generated world and parameter shapes derive
/// from these fields, and a checkpoint only restores into an
/// identically-shaped model.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Seed for world generation, ranker training, and model init.
    pub seed: u64,
    /// Base user profiles in the generated world (external ids map onto
    /// these, many-to-one).
    pub num_users: usize,
    /// Items in the generated world.
    pub num_items: usize,
    /// Served list length (candidates drawn per `/rerank`); must stay
    /// within the model's positional table (`RapidConfig::max_len`).
    pub list_len: usize,
    /// Weight of the live EMA topic preference in the initial score
    /// blend (0 disables online personalization).
    pub pref_boost: f32,
    /// RAPID training epochs when building an artifact.
    pub epochs: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            num_users: 60,
            num_items: 300,
            list_len: 10,
            pref_boost: 0.5,
            epochs: 2,
        }
    }
}

impl ServeConfig {
    /// The world this config generates (shared by train and boot).
    pub fn data_config(&self) -> DataConfig {
        let mut c = DataConfig::new(Flavor::Taobao);
        c.num_users = self.num_users;
        c.num_items = self.num_items;
        c.ranker_train_interactions = 1500;
        c.rerank_train_requests = 60;
        c.test_requests = 4;
        c
    }

    /// The model shape this config builds (shared by train and boot).
    pub fn rapid_config(&self) -> RapidConfig {
        let mut rc = RapidConfig::probabilistic();
        rc.seed = self.seed;
        rc.epochs = self.epochs;
        rc
    }
}

/// Trains a RAPID on the config's world with checkpointing enabled and
/// leaves the v2 artifact at `path` — the file [`ServeModel::boot`]
/// hot-loads. Runs the standard `rapid-eval` pipeline (SVMRank initial
/// ranker for speed) so the artifact is a *real* training checkpoint,
/// not a bespoke serving format.
///
/// # Errors
/// Propagates checkpoint I/O failures, and errors if training finished
/// without leaving an artifact on disk.
pub fn train_artifact(cfg: &ServeConfig, path: &Path) -> io::Result<()> {
    let mut ec = ExperimentConfig::new(Flavor::Taobao, Scale::Quick);
    ec.data = cfg.data_config();
    ec.seed = cfg.seed;
    ec.ranker = RankerKind::SvmRank;
    let pipeline = Pipeline::prepare(ec);
    let mut rapid = Rapid::new(pipeline.dataset(), cfg.rapid_config());
    let ckpt = CheckpointConfig::new(path, 1);
    rapid.fit_resumable(pipeline.dataset(), &pipeline.cache().train, &ckpt);
    if Checkpoint::load_path(path)?.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("training left no checkpoint at {}", path.display()),
        ));
    }
    Ok(())
}

/// Why a rerank request was refused before reaching the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RerankError {
    /// Requested list length exceeds the model's positional table (or
    /// the world's item count).
    ListTooLong {
        /// The largest length this server can serve.
        max: usize,
    },
    /// Requested list length was zero.
    EmptyList,
}

/// One served ranking with its per-stage wall-clock breakdown.
#[derive(Debug, Clone)]
pub struct Reranked {
    /// Item ids, best first, after RAPID re-ranking.
    pub items: Vec<usize>,
    /// The base profile the external user mapped to.
    pub base_user: usize,
    /// Initial-ranker scoring + sort.
    pub rank_ms: f64,
    /// Feature materialisation (`PreparedList::from_input`).
    pub prepare_ms: f64,
    /// RAPID inference through the degraded-parallel batch path.
    pub rerank_ms: f64,
}

/// The loaded serving stack: world + initial ranker + checkpoint-loaded
/// RAPID.
pub struct ServeModel {
    cfg: ServeConfig,
    ds: Dataset,
    ranker: SvmRank,
    rapid: Rapid,
    /// Epochs the loaded artifact had completed (surfaced in
    /// `/aggregates` so smoke jobs can assert the hot-load happened).
    pub epochs_done: u64,
}

impl ServeModel {
    /// Regenerates the config's world, trains the (cheap, linear)
    /// initial ranker, and hot-loads RAPID parameters from the v2
    /// checkpoint at `path`.
    ///
    /// # Errors
    /// `NotFound` when no artifact exists at `path`; `InvalidData` when
    /// the artifact's parameter names/shapes do not match this config.
    pub fn boot(cfg: &ServeConfig, path: &Path) -> io::Result<Self> {
        let ds = generate(&cfg.data_config());
        let ranker = SvmRank::fit(
            &ds,
            &SvmRankConfig {
                epochs: 3,
                seed: cfg.seed,
                ..SvmRankConfig::default()
            },
        );
        let mut rapid = Rapid::new(&ds, cfg.rapid_config());
        let cp = Checkpoint::load_path(path)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no checkpoint artifact at {}", path.display()),
            )
        })?;
        rapid.restore(&cp.params)?;
        let reg = rapid_obs::global();
        reg.counter_add("serve.model_loads", 1);
        reg.gauge_set("serve.model_epochs_done", cp.epochs_done as f64);
        Ok(Self {
            cfg: cfg.clone(),
            ds,
            ranker,
            rapid,
            epochs_done: cp.epochs_done,
        })
    }

    /// The generated world this server scores against.
    pub fn dataset(&self) -> &Dataset {
        &self.ds
    }

    /// The serving config this model booted with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The largest list length this server can serve.
    pub fn max_list_len(&self) -> usize {
        self.rapid.config().max_len.min(self.ds.items.len())
    }

    /// The deterministic candidate set for an external user: `k`
    /// distinct items drawn by iterated SplitMix64 so the same user
    /// always sees the same candidate pool (across requests *and*
    /// process restarts — the kill-and-restart test depends on this).
    fn candidates(&self, user: u64, k: usize) -> Vec<usize> {
        let n = self.ds.items.len();
        let mut picked = Vec::with_capacity(k);
        let mut seen = vec![false; n];
        let mut x = hash64(user ^ 0x00c0_ffee);
        while picked.len() < k {
            x = hash64(x);
            let v = (x % n as u64) as usize;
            if !seen[v] {
                seen[v] = true;
                picked.push(v);
            }
        }
        picked
    }

    /// Serves one ranking: candidate draw → blended initial scoring →
    /// RAPID re-rank through the degraded batch path. `state` is the
    /// user's live `/events` state, if any (cold-start users rank from
    /// the base profile alone).
    pub fn rerank(
        &self,
        user: u64,
        state: Option<&UserState>,
        k: usize,
    ) -> Result<Reranked, RerankError> {
        if k == 0 {
            return Err(RerankError::EmptyList);
        }
        if k > self.max_list_len() {
            return Err(RerankError::ListTooLong {
                max: self.max_list_len(),
            });
        }
        let base_user = match state {
            Some(s) => s.base_user,
            None => (hash64(user) % self.ds.users.len() as u64) as usize,
        };

        let t0 = rapid_obs::clock::now();
        let t0_us = rapid_obs::clock::wall_micros();
        let mut scored: Vec<(usize, f32)> = self
            .candidates(user, k)
            .into_iter()
            .map(|v| {
                let mut s = self.ranker.score(&self.ds, base_user, v);
                if let Some(st) = state {
                    let cov = &self.ds.items[v].coverage;
                    let live: f32 = st.pref.iter().zip(cov).map(|(p, c)| p * c).sum();
                    s += self.cfg.pref_boost * live;
                }
                (v, s)
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let items: Vec<usize> = scored.iter().map(|&(v, _)| v).collect();
        let init_scores: Vec<f32> = scored.iter().map(|&(_, s)| s).collect();
        let rank_dur = t0.elapsed();
        rapid_obs::trace::record_stage_nested("model/rank", t0_us, rank_dur);
        let rank_ms = rank_dur.as_secs_f64() * 1e3;

        let t1 = rapid_obs::clock::now();
        let t1_us = rapid_obs::clock::wall_micros();
        let prep = PreparedList::from_input(
            &self.ds,
            RerankInput {
                user: base_user,
                items: items.clone(),
                init_scores,
            },
        );
        let prepare_dur = t1.elapsed();
        rapid_obs::trace::record_stage_nested("model/prepare", t1_us, prepare_dur);
        let prepare_ms = prepare_dur.as_secs_f64() * 1e3;

        let t2 = rapid_obs::clock::now();
        let t2_us = rapid_obs::clock::wall_micros();
        let perm = self
            .rapid
            .rerank_batch(&self.ds, std::slice::from_ref(&prep))
            .into_iter()
            .next()
            .unwrap_or_else(|| (0..prep.len()).collect());
        let rerank_dur = t2.elapsed();
        rapid_obs::trace::record_stage_nested("model/rerank", t2_us, rerank_dur);
        let rerank_ms = rerank_dur.as_secs_f64() * 1e3;

        let reg = rapid_obs::global();
        reg.observe("serve.stage.rank_ms", rank_ms);
        reg.observe("serve.stage.prepare_ms", prepare_ms);
        reg.observe("serve.stage.rerank_ms", rerank_ms);

        Ok(Reranked {
            items: perm.into_iter().map(|i| items[i]).collect(),
            base_user,
            rank_ms,
            prepare_ms,
            rerank_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::UserStore;

    fn tiny() -> ServeConfig {
        ServeConfig {
            num_users: 30,
            num_items: 120,
            epochs: 1,
            ..ServeConfig::default()
        }
    }

    fn artifact(dir: &std::path::Path, cfg: &ServeConfig) -> std::path::PathBuf {
        let path = dir.join("serve.ckpt");
        train_artifact(cfg, &path).expect("training must leave an artifact");
        path
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("rapid-serve-model-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn boot_requires_an_artifact() {
        let cfg = tiny();
        let missing = tmpdir("missing").join("nope.ckpt");
        let err = match ServeModel::boot(&cfg, &missing) {
            Err(e) => e,
            Ok(_) => panic!("boot without an artifact must fail"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn rerank_serves_permutations_and_live_state_moves_them() {
        let cfg = tiny();
        let dir = tmpdir("serve");
        let model = ServeModel::boot(&cfg, &artifact(&dir, &cfg)).expect("boot");
        assert!(model.epochs_done >= 1);

        let cold = model.rerank(42, None, cfg.list_len).expect("cold rerank");
        assert_eq!(cold.items.len(), cfg.list_len);
        let mut sorted = cold.items.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), cfg.list_len, "served items must be distinct");

        // Same user, same request → identical ranking (determinism).
        let again = model.rerank(42, None, cfg.list_len).expect("rerank");
        assert_eq!(cold.items, again.items);

        // Push strong topic preference through the store; the blend
        // must be able to change the initial order for some user.
        let store = UserStore::new(4, cfg.num_users, model.dataset().num_topics());
        let moved = (0u64..20).any(|u| {
            let before = model.rerank(u, None, cfg.list_len).expect("rerank");
            for _ in 0..10 {
                let top = before.items[cfg.list_len - 1];
                let cov = model.dataset().items[top].coverage.clone();
                store.apply_event(u, top, Some(&cov), None);
            }
            let st = store.get(u).expect("state exists");
            let after = model.rerank(u, Some(&st), cfg.list_len).expect("rerank");
            after.items != before.items
        });
        assert!(moved, "live preference never changed any ranking");
    }

    #[test]
    fn oversized_and_empty_lists_are_refused() {
        let cfg = tiny();
        let dir = tmpdir("limits");
        let model = ServeModel::boot(&cfg, &artifact(&dir, &cfg)).expect("boot");
        let max = model.max_list_len();
        assert!(matches!(
            model.rerank(1, None, max + 1),
            Err(RerankError::ListTooLong { .. })
        ));
        assert!(matches!(
            model.rerank(1, None, 0),
            Err(RerankError::EmptyList)
        ));
    }
}
