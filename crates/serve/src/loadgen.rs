//! Seeded random-entity load generator with open-loop arrival.
//!
//! Two phases against a live server:
//!
//! 1. **Ingest** — batched `POST /events` covering a configurable number
//!    of *distinct* external users. Ids come from SplitMix64 over the
//!    seed, which is a bijection on `u64`: distinct indices are distinct
//!    users by construction, so "hundreds of thousands of distinct
//!    users" is a property of the generator, not a hope.
//! 2. **Rerank** — `POST /rerank` at a configured QPS with *open-loop*
//!    arrival: request `i`'s start time is fixed at `i / qps` seconds
//!    from phase start regardless of how fast earlier responses came
//!    back, and latency is measured from that scheduled instant, so
//!    server-side queueing delay counts against the latency budget the
//!    way it would for real independent clients.
//!
//! Worker threads share the schedule through one atomic cursor; each
//! holds one keep-alive [`Client`] connection.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::client::Client;
use crate::state::hash64;

/// Load shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Distinct external users to ingest events for.
    pub users: u64,
    /// Events per `POST /events` batch.
    pub event_batch: usize,
    /// Total `POST /rerank` requests.
    pub reranks: u64,
    /// Open-loop arrival rate for the rerank phase (requests/second).
    pub qps: f64,
    /// Worker threads (one keep-alive connection each).
    pub connections: usize,
    /// Seed for user-id generation and request targeting.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            users: 120_000,
            event_batch: 2_000,
            reranks: 600,
            qps: 80.0,
            connections: 4,
            seed: 0x10ad,
        }
    }
}

/// What a load run observed.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Distinct users whose events were sent.
    pub distinct_users: u64,
    /// Events sent across all batches.
    pub events_sent: u64,
    /// `POST /events` requests issued.
    pub event_posts: u64,
    /// `POST /rerank` requests issued.
    pub rerank_requests: u64,
    /// Responses outside the 2xx class (any endpoint).
    pub non_2xx: u64,
    /// Requests that failed at the transport layer.
    pub transport_errors: u64,
    /// Per-request rerank latency in ms, measured from the scheduled
    /// (open-loop) start instant.
    pub latencies_ms: Vec<f64>,
    /// Ingest-phase wall-clock seconds.
    pub ingest_s: f64,
    /// Rerank-phase wall-clock seconds.
    pub rerank_s: f64,
}

impl LoadReport {
    /// Exact latency quantile over the recorded rerank requests (`NaN`
    /// when none completed).
    pub fn latency_quantile(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        let idx = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Achieved rerank throughput (requests/second).
    pub fn achieved_qps(&self) -> f64 {
        if self.rerank_s <= 0.0 {
            return 0.0;
        }
        self.rerank_requests as f64 / self.rerank_s
    }
}

/// The `i`-th distinct external user id for a seed (SplitMix64 is a
/// bijection, so distinct `i` → distinct ids).
pub fn user_id(seed: u64, i: u64) -> u64 {
    hash64(seed ^ (i.wrapping_mul(0x0100_0000_01b3)))
}

/// Runs the two-phase load against a live server at `addr`.
pub fn run(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let mut report = LoadReport {
        distinct_users: cfg.users,
        ..LoadReport::default()
    };

    // Phase 1: ingest. Batches are split across worker threads by an
    // atomic cursor over batch indices.
    let batches = (cfg.users as usize).div_ceil(cfg.event_batch.max(1)) as u64;
    let cursor = AtomicU64::new(0);
    let non_2xx = AtomicU64::new(0);
    let transport = AtomicU64::new(0);
    let events_sent = AtomicU64::new(0);
    let t0 = rapid_obs::clock::now();
    std::thread::scope(|scope| {
        for _ in 0..cfg.connections.max(1) {
            scope.spawn(|| {
                let mut client = Client::new(addr);
                loop {
                    let b = cursor.fetch_add(1, Ordering::Relaxed);
                    if b >= batches {
                        return;
                    }
                    let lo = b * cfg.event_batch as u64;
                    let hi = (lo + cfg.event_batch as u64).min(cfg.users);
                    let body = events_batch_body(cfg.seed, lo, hi);
                    events_sent.fetch_add(hi - lo, Ordering::Relaxed);
                    match client.post("/events", &body) {
                        Ok(r) if (200..300).contains(&r.status) => {}
                        Ok(_) => {
                            non_2xx.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            transport.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    report.ingest_s = t0.elapsed().as_secs_f64();
    report.event_posts = batches;
    report.events_sent = events_sent.load(Ordering::Relaxed);

    // Phase 2: rerank at fixed open-loop arrival.
    let cursor = AtomicU64::new(0);
    let latencies = Mutex::new(Vec::with_capacity(cfg.reranks as usize));
    let t1 = rapid_obs::clock::now();
    std::thread::scope(|scope| {
        for _ in 0..cfg.connections.max(1) {
            scope.spawn(|| {
                let mut client = Client::new(addr);
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= cfg.reranks {
                        break;
                    }
                    let scheduled_s = i as f64 / cfg.qps.max(1e-6);
                    loop {
                        let now_s = t1.elapsed().as_secs_f64();
                        if now_s >= scheduled_s {
                            break;
                        }
                        std::thread::sleep(Duration::from_secs_f64(
                            (scheduled_s - now_s).min(0.005),
                        ));
                    }
                    let u = user_id(cfg.seed, hash64(cfg.seed ^ i) % cfg.users);
                    let body = format!("{{\"user\": {u}}}");
                    let sent_at = t1.elapsed().as_secs_f64();
                    match client.post("/rerank", &body) {
                        Ok(r) if (200..300).contains(&r.status) => {
                            let done = t1.elapsed().as_secs_f64();
                            // Open-loop latency: from the scheduled
                            // instant, so generator lag counts too.
                            local.push((done - scheduled_s.min(sent_at)) * 1e3);
                        }
                        Ok(_) => {
                            non_2xx.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            transport.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                match latencies.lock() {
                    Ok(mut all) => all.extend(local),
                    Err(poisoned) => poisoned.into_inner().extend(local),
                }
            });
        }
    });
    report.rerank_s = t1.elapsed().as_secs_f64();
    report.rerank_requests = cfg.reranks;
    report.non_2xx = non_2xx.load(Ordering::Relaxed);
    report.transport_errors = transport.load(Ordering::Relaxed);
    report.latencies_ms = match latencies.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    report
}

/// The `/events` body covering users `lo..hi` of the seeded id space.
/// Every third event is an impression (no click), and each event
/// carries `seq: 1` so a full replay of the same batch is detected
/// server-side.
fn events_batch_body(seed: u64, lo: u64, hi: u64) -> String {
    let mut body = String::with_capacity(48 * (hi - lo) as usize);
    body.push_str("{\"events\": [");
    for i in lo..hi {
        if i > lo {
            body.push(',');
        }
        let u = user_id(seed, i);
        let item = hash64(u ^ 0x17e3) % 100_000;
        let click = i % 3 != 0;
        body.push_str(&format!(
            "{{\"user\": {u}, \"item\": {item}, \"click\": {click}, \"seq\": 1}}"
        ));
    }
    body.push_str("]}");
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_ids_are_distinct_across_a_large_range() {
        let mut ids: Vec<u64> = (0..200_000).map(|i| user_id(9, i)).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200_000, "SplitMix64 must not collide");
    }

    #[test]
    fn batch_bodies_are_valid_json_with_the_right_count() {
        let body = events_batch_body(9, 0, 50);
        let v = serde_json::parse_value(&body).unwrap();
        let events = v.field("events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 50);
        for e in events {
            e.field("user").unwrap().as_u64().unwrap();
            e.field("item").unwrap().as_u64().unwrap();
        }
    }

    #[test]
    fn latency_quantiles_are_exact_order_statistics() {
        let r = LoadReport {
            latencies_ms: vec![5.0, 1.0, 3.0, 2.0, 4.0],
            ..LoadReport::default()
        };
        assert_eq!(r.latency_quantile(0.0), 1.0);
        assert_eq!(r.latency_quantile(0.5), 3.0);
        assert_eq!(r.latency_quantile(1.0), 5.0);
        assert!(LoadReport::default().latency_quantile(0.5).is_nan());
    }
}
