//! Maximum-likelihood DCM parameter estimation from click logs.
//!
//! Implements the classical estimator of Guo et al. (WSDM 2009), which
//! the paper uses to fit its click-generation model: in a DCM, every
//! position at or before the session's **last click** was certainly
//! examined, so
//!
//! * attraction `ᾱ_v` ≈ clicks on `v` / examined impressions of `v`;
//! * termination `ε̄(k)` ≈ P(click at `k` is the last click | click at
//!   `k`) — with the usual correction that sessions whose last click is
//!   the final position are uninformative about termination there.
//!
//! Tests verify recovery of known synthetic parameters.

use rapid_data::ItemId;

/// Estimated DCM parameters.
#[derive(Debug, Clone)]
pub struct DcmEstimate {
    /// Per-item attraction estimates (NaN-free; items never examined get
    /// the global prior).
    pub attraction: Vec<f32>,
    /// Per-position termination estimates.
    pub termination: Vec<f32>,
}

/// Estimates DCM parameters from `(list, clicks)` session logs.
///
/// `num_items` bounds the item id space; `list_len` bounds positions.
/// Sessions shorter than `list_len` are fine. Laplace smoothing (1, 2)
/// keeps estimates away from 0/1 under sparse data.
pub fn estimate_dcm(
    logs: &[(Vec<ItemId>, Vec<bool>)],
    num_items: usize,
    list_len: usize,
) -> DcmEstimate {
    let mut clicks = vec![0.0f64; num_items];
    let mut examined = vec![0.0f64; num_items];

    for (list, session_clicks) in logs {
        debug_assert_eq!(list.len(), session_clicks.len());
        let last = session_clicks.iter().rposition(|&c| c);
        let Some(last) = last else {
            // No clicks: under DCM the user only terminates after a
            // click, so the whole list was examined.
            for &v in list {
                examined[v] += 1.0;
            }
            continue;
        };
        for (k, (&v, &c)) in list.iter().zip(session_clicks).enumerate() {
            if k <= last {
                examined[v] += 1.0;
                if c {
                    clicks[v] += 1.0;
                }
            }
        }
    }

    let global_rate = {
        let c: f64 = clicks.iter().sum();
        let e: f64 = examined.iter().sum();
        if e > 0.0 {
            c / e
        } else {
            0.5
        }
    };

    let attraction: Vec<f32> = clicks
        .iter()
        .zip(&examined)
        .map(|(&c, &e)| {
            if e > 0.0 {
                (((c + 1.0) / (e + 2.0)).max(1e-4) as f32).min(1.0 - 1e-4)
            } else {
                global_rate as f32
            }
        })
        .collect();

    // Termination: a last click at `k` is either a termination or a
    // continuation that happened to produce no further clicks, so
    // P(last | click at k) = ε̄(k) + (1 − ε̄(k)) · q, with
    // q = Π_{j>k} (1 − ᾱ(v_j)) computed from the attraction estimates.
    // Aggregating over sessions: L_k ≈ ε̄ C_k + (1 − ε̄) Q_k, hence
    // ε̄(k) ≈ (L_k − Q_k) / (C_k − Q_k).
    let termination = estimate_terminations(logs, list_len, &attraction);

    // Refinement (one EM-style pass): the classical estimator drops all
    // impressions after the last click, which inflates attraction —
    // badly so when terminations are small (most "last clicks" are in
    // fact continuations that produced no further clicks). Re-estimate
    // attraction including those impressions *fractionally*, weighted
    // by the posterior probability the user continued:
    // `P(continued | last click at k) = (1−ε̂)·q / (ε̂ + (1−ε̂)·q)`.
    let mut clicks2 = vec![0.0f64; num_items];
    let mut examined2 = vec![0.0f64; num_items];
    for (list, session_clicks) in logs {
        let last = session_clicks.iter().rposition(|&c| c);
        let Some(last) = last else {
            for &v in list {
                examined2[v] += 1.0;
            }
            continue;
        };
        for (k, (&v, &c)) in list.iter().zip(session_clicks).enumerate() {
            if k <= last {
                examined2[v] += 1.0;
                if c {
                    clicks2[v] += 1.0;
                }
            }
        }
        if last + 1 < list.len() {
            let eps = f64::from(*termination.get(last).unwrap_or(&0.5));
            let q: f64 = list[last + 1..]
                .iter()
                .map(|&v| 1.0 - f64::from(attraction[v]))
                .product();
            let p_cont = (1.0 - eps) * q / (eps + (1.0 - eps) * q).max(1e-12);
            for &v in &list[last + 1..] {
                examined2[v] += p_cont;
            }
        }
    }
    let attraction: Vec<f32> = clicks2
        .iter()
        .zip(&examined2)
        .map(|(&c, &e)| {
            if e > 0.0 {
                (((c + 1.0) / (e + 2.0)).max(1e-4) as f32).min(1.0 - 1e-4)
            } else {
                global_rate as f32
            }
        })
        .collect();

    // Second termination pass against the de-biased attractions.
    let termination = estimate_terminations(logs, list_len, &attraction);

    DcmEstimate {
        attraction,
        termination,
    }
}

/// Termination MLE given attraction estimates (see the derivation at
/// the call site).
fn estimate_terminations(
    logs: &[(Vec<ItemId>, Vec<bool>)],
    list_len: usize,
    attraction: &[f32],
) -> Vec<f32> {
    let mut last_click_at = vec![0.0f64; list_len];
    let mut click_at = vec![0.0f64; list_len];
    let mut q_at = vec![0.0f64; list_len];
    for (list, session_clicks) in logs {
        let Some(last) = session_clicks.iter().rposition(|&c| c) else {
            continue;
        };
        for (k, &c) in session_clicks.iter().enumerate() {
            if !c || k >= list_len || k + 1 >= list.len() {
                continue; // last position is uninformative
            }
            click_at[k] += 1.0;
            if k == last {
                last_click_at[k] += 1.0;
            }
            let q: f64 = list[k + 1..]
                .iter()
                .map(|&v| 1.0 - f64::from(attraction[v]))
                .product();
            q_at[k] += q;
        }
    }
    (0..list_len)
        .map(|k| {
            let denom = click_at[k] - q_at[k];
            if denom > 1.0 {
                (((last_click_at[k] - q_at[k]) / denom) as f32).clamp(1e-4, 1.0 - 1e-4)
            } else {
                0.5
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dcm;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Generate sessions from a known DCM and verify the estimator
    /// recovers both parameter families.
    #[test]
    fn recovers_synthetic_parameters() {
        let num_items = 20;
        let list_len = 5;
        let mut rng = StdRng::seed_from_u64(17);
        let true_attraction: Vec<f32> = (0..num_items).map(|_| rng.gen_range(0.1..0.9)).collect();
        let dcm = Dcm::standard(list_len, 1.0);

        let mut logs = Vec::new();
        for _ in 0..60_000 {
            // Random list of distinct items.
            let mut list = Vec::with_capacity(list_len);
            while list.len() < list_len {
                let v = rng.gen_range(0..num_items);
                if !list.contains(&v) {
                    list.push(v);
                }
            }
            let phi: Vec<f32> = list.iter().map(|&v| true_attraction[v]).collect();
            let clicks = dcm.simulate(&phi, &mut rng);
            logs.push((list, clicks));
        }

        let est = estimate_dcm(&logs, num_items, list_len);

        // The classical estimator discards examined-but-unclicked
        // impressions after the last click, so a small upward bias is
        // expected; bound the max loosely and the mean tightly.
        let mut max_attr_err = 0.0f32;
        let mut mean_attr_err = 0.0f32;
        for (est_phi, true_phi) in est.attraction.iter().zip(&true_attraction) {
            let err = (est_phi - true_phi).abs();
            max_attr_err = max_attr_err.max(err);
            mean_attr_err += err / num_items as f32;
        }
        assert!(max_attr_err < 0.10, "max attraction error {max_attr_err}");
        assert!(
            mean_attr_err < 0.04,
            "mean attraction error {mean_attr_err}"
        );

        // Terminations: only the first K-1 positions are identifiable
        // from "last click strictly before the end" events.
        for k in 0..list_len - 1 {
            let err = (est.termination[k] - dcm.terminations[k]).abs();
            assert!(
                err < 0.08,
                "termination error {err} at position {k} (est {} vs true {})",
                est.termination[k],
                dcm.terminations[k]
            );
        }
    }

    #[test]
    fn handles_empty_logs() {
        let est = estimate_dcm(&[], 5, 3);
        assert_eq!(est.attraction.len(), 5);
        assert_eq!(est.termination.len(), 3);
        assert!(est.attraction.iter().all(|a| a.is_finite()));
    }

    #[test]
    fn no_click_sessions_lower_attraction() {
        // One item shown twice with no clicks, once with a click.
        let logs = vec![
            (vec![0], vec![false]),
            (vec![0], vec![false]),
            (vec![0], vec![true]),
        ];
        let est = estimate_dcm(&logs, 1, 1);
        // (1+1)/(3+2) = 0.4
        assert!((est.attraction[0] - 0.4).abs() < 1e-5);
    }
}
