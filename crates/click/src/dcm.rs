//! The DCM environment: attraction computation, click simulation, and
//! closed-form expected metrics.

use rand::Rng;
use rapid_data::{Dataset, ItemId, UserId};
use rapid_diversity::sequential_gains;

/// A dependent click model with a relevance/diversity tradeoff `λ` and
/// non-increasing per-position termination probabilities.
#[derive(Debug, Clone)]
pub struct Dcm {
    /// Tradeoff: 1.0 = clicks driven purely by relevance (ads-like),
    /// 0.5 = relevance and diversity equally important (feed-like).
    pub lambda: f32,
    /// `ε̄(k)`: probability of leaving after a click at position `k`.
    pub terminations: Vec<f32>,
}

impl Dcm {
    /// Standard environment for lists of length `len`: geometrically
    /// decaying terminations `ε̄(k) = 0.22 · 0.92^k` (non-increasing, per
    /// the assumption of the paper's Theorem 5.1). The low magnitude
    /// matches the paper's regime of *multiple* clicks per session —
    /// users rarely leave after a single click.
    pub fn standard(len: usize, lambda: f32) -> Self {
        assert!(
            (0.0..=1.0).contains(&lambda),
            "Dcm: lambda {lambda} out of [0,1]"
        );
        let terminations = (0..len).map(|k| 0.22 * 0.92f32.powi(k as i32)).collect();
        Self {
            lambda,
            terminations,
        }
    }

    /// List length this environment supports.
    pub fn len(&self) -> usize {
        self.terminations.len()
    }

    /// `true` when configured for empty lists.
    pub fn is_empty(&self) -> bool {
        self.terminations.is_empty()
    }

    /// Ground-truth attraction probabilities `φ̄(v_k)` for an **ordered**
    /// list shown to `user`: `λ·ᾱ + (1−λ)·appetite·min(1, m·θ*ᵀζ)`,
    /// clamped to `[0, 1]`.
    ///
    /// The `m` factor rescales the preference-weighted coverage gain
    /// (whose natural magnitude shrinks with the topic count) into the
    /// same range as the relevance term, so the first occurrence of a
    /// preferred topic meaningfully boosts the click probability.
    pub fn attractions(&self, ds: &Dataset, user: UserId, list: &[ItemId]) -> Vec<f32> {
        let u = &ds.users[user];
        let m = ds.num_topics() as f32;
        let covs: Vec<&[f32]> = list
            .iter()
            .map(|&v| ds.items[v].coverage.as_slice())
            .collect();
        let gains = sequential_gains(&covs);
        list.iter()
            .zip(&gains)
            .map(|(&v, gain)| {
                let rel = ds.attraction(user, v);
                let pref_gain: f32 = u.pref.iter().zip(gain).map(|(p, g)| p * g).sum();
                let div = (u.appetite * (m * pref_gain)).min(1.0);
                (self.lambda * rel + (1.0 - self.lambda) * div).clamp(0.0, 1.0)
            })
            .collect()
    }

    /// Simulates one DCM session over the given attractions; returns the
    /// click indicator per position. Positions after termination (or
    /// after the configured length) are never clicked.
    pub fn simulate(&self, attractions: &[f32], rng: &mut impl Rng) -> Vec<bool> {
        let mut clicks = vec![false; attractions.len()];
        for (k, &phi) in attractions.iter().enumerate() {
            if k >= self.terminations.len() {
                break;
            }
            if rng.gen::<f32>() < phi {
                clicks[k] = true;
                if rng.gen::<f32>() < self.terminations[k] {
                    break;
                }
            }
        }
        clicks
    }

    /// Closed-form expected number of clicks in the top-`k` prefix:
    /// `Σ_{i≤k} φ_i · Π_{j<i} (1 − φ_j ε_j)` — the `click@k` metric
    /// without simulation noise.
    pub fn expected_clicks(&self, attractions: &[f32], k: usize) -> f32 {
        let k = k.min(attractions.len()).min(self.terminations.len());
        let mut examine = 1.0f32;
        let mut total = 0.0f32;
        for (&phi, &eps) in attractions.iter().zip(&self.terminations).take(k) {
            total += examine * phi;
            examine *= 1.0 - phi * eps;
        }
        total
    }

    /// User satisfaction of the top-`k` prefix (§IV-B2):
    /// `satis@k = 1 − Π_{i≤k} (1 − ε̄(i)·φ̄(v_i))`.
    pub fn satisfaction(&self, attractions: &[f32], k: usize) -> f32 {
        let k = k.min(attractions.len()).min(self.terminations.len());
        let mut miss = 1.0f32;
        for (&phi, &eps) in attractions.iter().zip(&self.terminations).take(k) {
            miss *= 1.0 - eps * phi;
        }
        1.0 - miss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rapid_data::{generate, DataConfig, Flavor};

    fn tiny_dataset() -> Dataset {
        let mut c = DataConfig::new(Flavor::MovieLens);
        c.num_users = 20;
        c.num_items = 100;
        c.ranker_train_interactions = 100;
        c.rerank_train_requests = 5;
        c.test_requests = 5;
        generate(&c)
    }

    #[test]
    fn terminations_are_non_increasing() {
        let dcm = Dcm::standard(10, 0.9);
        for w in dcm.terminations.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(dcm.len(), 10);
    }

    #[test]
    fn attractions_are_probabilities() {
        let ds = tiny_dataset();
        let req = &ds.test[0];
        let dcm = Dcm::standard(req.candidates.len(), 0.5);
        let phi = dcm.attractions(&ds, req.user, &req.candidates);
        assert_eq!(phi.len(), req.candidates.len());
        assert!(phi.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn lambda_one_ignores_diversity() {
        let ds = tiny_dataset();
        let req = &ds.test[0];
        let dcm = Dcm::standard(req.candidates.len(), 1.0);
        let phi = dcm.attractions(&ds, req.user, &req.candidates);
        for (k, &v) in req.candidates.iter().enumerate() {
            assert!((phi[k] - ds.attraction(req.user, v)).abs() < 1e-6);
        }
    }

    #[test]
    fn diversity_term_rewards_novel_first_occurrence() {
        // With λ = 0, clicks are purely diversity-driven: a repeated
        // topic's second occurrence must have no larger attraction than
        // its first.
        let ds = tiny_dataset();
        let dcm = Dcm::standard(20, 0.0);
        // Build a list with a duplicate topic structure: just use any
        // list and check that total diversity attraction ≤ appetite-based
        // cap and per-position ∈ [0, 1].
        let req = &ds.test[1];
        let mut list = req.candidates.clone();
        // duplicate the first item's topic by repeating the item id is
        // not allowed; instead, verify that reversing cannot create
        // negative attraction and values stay bounded.
        list.reverse();
        let phi = dcm.attractions(&ds, req.user, &list);
        assert!(phi.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn expected_clicks_match_simulation() {
        let attractions = vec![0.7, 0.4, 0.5, 0.2, 0.6];
        let dcm = Dcm::standard(5, 0.9);
        let analytic = dcm.expected_clicks(&attractions, 5);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let mut total = 0usize;
        for _ in 0..n {
            total += dcm
                .simulate(&attractions, &mut rng)
                .iter()
                .filter(|&&c| c)
                .count();
        }
        let empirical = total as f32 / n as f32;
        assert!(
            (analytic - empirical).abs() < 0.01,
            "analytic {analytic} vs empirical {empirical}"
        );
    }

    #[test]
    fn satisfaction_matches_simulation() {
        // satis@k = P(user leaves satisfied within top-k) =
        // P(∃ click that terminates).
        let attractions = vec![0.5, 0.5, 0.5];
        let dcm = Dcm::standard(3, 0.9);
        let analytic = dcm.satisfaction(&attractions, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let mut satisfied = 0usize;
        for _ in 0..n {
            // Re-simulate manually to observe termination.
            let mut done = false;
            for (&phi, &eps) in attractions.iter().zip(&dcm.terminations).take(3) {
                if rng.gen::<f32>() < phi && rng.gen::<f32>() < eps {
                    done = true;
                    break;
                }
            }
            if done {
                satisfied += 1;
            }
        }
        let empirical = satisfied as f32 / n as f32;
        assert!(
            (analytic - empirical).abs() < 0.01,
            "analytic {analytic} vs empirical {empirical}"
        );
    }

    #[test]
    fn expected_clicks_monotone_in_k() {
        let attractions = vec![0.3; 10];
        let dcm = Dcm::standard(10, 0.5);
        let mut prev = 0.0;
        for k in 1..=10 {
            let c = dcm.expected_clicks(&attractions, k);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn better_lists_satisfy_more() {
        let good = vec![0.9, 0.9, 0.9];
        let bad = vec![0.1, 0.1, 0.1];
        let dcm = Dcm::standard(3, 0.9);
        assert!(dcm.satisfaction(&good, 3) > dcm.satisfaction(&bad, 3));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Expected clicks stay within [0, k] and satisfaction in [0, 1].
            #[test]
            fn metrics_are_bounded(
                phis in proptest::collection::vec(0.0f32..=1.0, 1..15),
                k in 1usize..20,
            ) {
                let dcm = Dcm::standard(phis.len(), 0.5);
                let c = dcm.expected_clicks(&phis, k);
                prop_assert!((0.0..=k as f32 + 1e-5).contains(&c));
                let s = dcm.satisfaction(&phis, k);
                prop_assert!((0.0..=1.0 + 1e-6).contains(&s));
            }

            /// Raising any single attraction never lowers satisfaction
            /// (pointwise monotonicity of the utility function).
            #[test]
            fn satisfaction_monotone_in_attraction(
                phis in proptest::collection::vec(0.0f32..=0.9, 2..10),
                idx in 0usize..10,
            ) {
                let idx = idx % phis.len();
                let dcm = Dcm::standard(phis.len(), 0.5);
                let mut boosted = phis.clone();
                boosted[idx] = (boosted[idx] + 0.1).min(1.0);
                prop_assert!(
                    dcm.satisfaction(&boosted, phis.len())
                        >= dcm.satisfaction(&phis, phis.len()) - 1e-6
                );
            }

            /// Simulation length discipline: one click vector per
            /// position, no clicks beyond the termination schedule.
            #[test]
            fn simulation_respects_length(
                phis in proptest::collection::vec(0.0f32..=1.0, 2..10),
                seed in 0u64..1000,
            ) {
                let dcm = Dcm::standard(phis.len() - 1, 1.0);
                let mut rng = StdRng::seed_from_u64(seed);
                let clicks = dcm.simulate(&phis, &mut rng);
                prop_assert_eq!(clicks.len(), phis.len());
                for &c in &clicks[dcm.len()..] {
                    prop_assert!(!c);
                }
            }
        }
    }
}
