//! Dependent Click Model (DCM) click environment — §IV-B1 of the paper.
//!
//! The paper evaluates semi-synthetically: a DCM generates the click
//! feedback used both for training the re-rankers and for the unbiased
//! evaluation metrics. In a DCM the user scans a list top-down; at
//! position `k` they click with the attraction probability `φ̄(v_k)`,
//! and, *given a click*, leave satisfied with the position-dependent
//! termination probability `ε̄(k)`; otherwise they continue.
//!
//! The attraction combines relevance and **personalized** diversity,
//! following Hiranandani et al. (2020) / Li et al. (2020) as the paper
//! does: `φ̄(v_k) = λ·ᾱ(v_k) + (1−λ)·ρ̄ᵀζ(v_k)`, where `ζ(v_k)` is the
//! topic-coverage gain of item `v_k` over its predecessors and `ρ̄` is a
//! per-user diversity weight (here: appetite × preference).
//!
//! [`estimate`] implements the classical maximum-likelihood DCM
//! parameter estimation from click logs (Guo et al., WSDM 2009) — the
//! paper fits its click model the same way; tests verify parameter
//! recovery on synthetic logs.

pub mod dcm;
pub mod estimate;

pub use dcm::Dcm;
pub use estimate::{estimate_dcm, DcmEstimate};
