//! Raw re-ranking inputs, shared by every model layer.

use rapid_data::{Dataset, ItemId, UserId};

/// One re-ranking instance: a user plus the **ordered** initial list `R`
/// with the initial ranker's scores.
#[derive(Debug, Clone)]
pub struct RerankInput {
    /// The requesting user.
    pub user: UserId,
    /// The initial list `R`, best-first.
    pub items: Vec<ItemId>,
    /// Initial-ranker scores aligned with `items`.
    pub init_scores: Vec<f32>,
}

impl RerankInput {
    /// List length `L`.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` for an empty list.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Initial scores squashed to `(0, 1)` — a relevance proxy for the
    /// heuristic diversifiers, which expect probabilities.
    pub fn relevance_probs(&self) -> Vec<f32> {
        self.init_scores
            .iter()
            .map(|&s| 1.0 / (1.0 + (-s).exp()))
            .collect()
    }

    /// Coverage vectors of the listed items, in list order.
    pub fn coverages<'a>(&self, ds: &'a Dataset) -> Vec<&'a [f32]> {
        self.items
            .iter()
            .map(|&v| ds.items[v].coverage.as_slice())
            .collect()
    }
}

/// A labeled training instance: the initial list plus the DCM click
/// feedback observed on it.
#[derive(Debug, Clone)]
pub struct TrainSample {
    /// The list shown.
    pub input: RerankInput,
    /// Click indicator per position of `input.items`.
    pub clicks: Vec<bool>,
}
