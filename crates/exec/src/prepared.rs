//! Prepared per-list inputs: everything the models gather from the
//! `Dataset` on a forward pass, materialised once.

use rapid_data::{Dataset, ItemId, UserId};
use rapid_diversity::marginal_diversity;
use rapid_tensor::Matrix;

use crate::input::{RerankInput, TrainSample};
use crate::parallel::par_map;

/// Per-item input features of the neural re-rankers:
/// `[x_u, x_v, τ_v, init_score]` — user features, item features, topic
/// coverage, and the initial ranker's score.
pub fn item_features(ds: &Dataset, user: UserId, item: ItemId, init_score: f32) -> Vec<f32> {
    let xu = &ds.users[user].features;
    let xv = &ds.items[item].features;
    let tau = &ds.items[item].coverage;
    let mut f = Vec::with_capacity(xu.len() + xv.len() + tau.len() + 1);
    f.extend_from_slice(xu);
    f.extend_from_slice(xv);
    f.extend_from_slice(tau);
    f.push(init_score);
    f
}

/// Feature dimension produced by [`item_features`] for this dataset.
pub fn item_feature_dim(ds: &Dataset) -> usize {
    ds.users[0].features.len() + ds.items[0].features.len() + ds.num_topics() + 1
}

/// The `(L, d)` feature matrix of one initial list.
pub fn list_feature_matrix(ds: &Dataset, input: &RerankInput) -> Matrix {
    let d = item_feature_dim(ds);
    let mut data = Vec::with_capacity(input.len() * d);
    for (i, &v) in input.items.iter().enumerate() {
        data.extend(item_features(ds, input.user, v, input.init_scores[i]));
    }
    Matrix::from_vec(input.len(), d, data)
}

/// One re-ranking list with every model input gathered up front, so
/// training epochs and inference iterate over cached matrices instead of
/// re-assembling them from the `Dataset` per forward pass.
#[derive(Debug, Clone)]
pub struct PreparedList {
    /// The raw request (user, ordered items, initial scores).
    pub input: RerankInput,
    /// Click labels, present for training lists.
    pub clicks: Option<Vec<bool>>,
    /// The `(L, d)` neural feature matrix `[x_u, x_v, τ_v, init_score]`.
    pub features: Matrix,
    /// Topic-coverage row per listed item (owned copies, list order).
    pub coverage: Vec<Vec<f32>>,
    /// The `(L, m)` marginal-diversity (novelty) matrix of the list.
    pub novelty: Matrix,
    /// Sigmoid-squashed initial scores (the heuristics' relevance proxy).
    pub relevance: Vec<f32>,
}

impl PreparedList {
    /// Prepares one unlabeled list (inference path).
    pub fn from_input(ds: &Dataset, input: RerankInput) -> Self {
        let features = list_feature_matrix(ds, &input);
        let coverage: Vec<Vec<f32>> = input
            .items
            .iter()
            .map(|&v| ds.items[v].coverage.clone())
            .collect();
        let m = ds.num_topics();
        let cov_refs: Vec<&[f32]> = coverage.iter().map(|c| c.as_slice()).collect();
        let mut nov = Vec::with_capacity(input.len() * m);
        for i in 0..input.len() {
            nov.extend(marginal_diversity(&cov_refs, i));
        }
        let novelty = Matrix::from_vec(input.len(), m, nov);
        let relevance = input.relevance_probs();
        Self {
            input,
            clicks: None,
            features,
            coverage,
            novelty,
            relevance,
        }
    }

    /// Prepares one click-labeled list (training path).
    pub fn from_sample(ds: &Dataset, sample: &TrainSample) -> Self {
        let mut p = Self::from_input(ds, sample.input.clone());
        p.clicks = Some(sample.clicks.clone());
        p
    }

    /// List length `L`.
    pub fn len(&self) -> usize {
        self.input.len()
    }

    /// `true` for an empty list.
    pub fn is_empty(&self) -> bool {
        self.input.is_empty()
    }

    /// The requesting user.
    pub fn user(&self) -> UserId {
        self.input.user
    }

    /// Coverage rows as borrowed slices (what the diversity kernels eat).
    pub fn coverage_slices(&self) -> Vec<&[f32]> {
        self.coverage.iter().map(|c| c.as_slice()).collect()
    }

    /// The click labels; panics on an inference-only list.
    pub fn labels(&self) -> &[bool] {
        self.clicks
            .as_deref()
            // lint:allow(no-unwrap) — documented contract panic with a specific message
            .expect("PreparedList::labels on an unlabeled list")
    }

    /// The feature matrix with the init-score column zeroed (the input of
    /// ranking-stage models that must not see the initial ranker).
    pub fn features_without_score(&self) -> Matrix {
        let mut f = self.features.clone();
        let last = f.cols() - 1;
        for r in 0..f.rows() {
            f.set(r, last, 0.0);
        }
        f
    }
}

/// All lists of an experiment, prepared once (in parallel) and reused by
/// every model's training epochs and test-time scoring.
#[derive(Debug, Clone, Default)]
pub struct FeatureCache {
    /// Click-labeled training lists.
    pub train: Vec<PreparedList>,
    /// Unlabeled test lists.
    pub test: Vec<PreparedList>,
}

impl FeatureCache {
    /// Materialises every train/test list up front.
    pub fn build(ds: &Dataset, train: &[TrainSample], test: &[RerankInput]) -> Self {
        Self {
            train: par_map(train, |s| PreparedList::from_sample(ds, s)),
            test: par_map(test, |i| PreparedList::from_input(ds, i.clone())),
        }
    }

    /// Prepares training lists only.
    pub fn from_samples(ds: &Dataset, train: &[TrainSample]) -> Vec<PreparedList> {
        par_map(train, |s| PreparedList::from_sample(ds, s))
    }

    /// Prepares inference lists only.
    pub fn from_inputs(ds: &Dataset, inputs: &[RerankInput]) -> Vec<PreparedList> {
        par_map(inputs, |i| PreparedList::from_input(ds, i.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_data::{generate, DataConfig, Flavor};

    fn tiny() -> Dataset {
        let mut c = DataConfig::new(Flavor::Taobao);
        c.num_users = 10;
        c.num_items = 60;
        c.ranker_train_interactions = 100;
        c.rerank_train_requests = 4;
        c.test_requests = 3;
        generate(&c)
    }

    fn input(ds: &Dataset, idx: usize) -> RerankInput {
        RerankInput {
            user: ds.test[idx].user,
            items: ds.test[idx].candidates.clone(),
            init_scores: (0..ds.test[idx].candidates.len())
                .map(|i| 1.0 - i as f32 * 0.1)
                .collect(),
        }
    }

    #[test]
    fn prepared_matches_on_demand_assembly() {
        let ds = tiny();
        let inp = input(&ds, 0);
        let p = PreparedList::from_input(&ds, inp.clone());
        assert_eq!(
            p.features.as_slice(),
            list_feature_matrix(&ds, &inp).as_slice()
        );
        assert_eq!(p.relevance, inp.relevance_probs());
        assert_eq!(p.coverage_slices(), inp.coverages(&ds));
        assert_eq!(p.novelty.shape(), (inp.len(), ds.num_topics()));
    }

    #[test]
    fn features_without_score_zeroes_only_the_last_column() {
        let ds = tiny();
        let p = PreparedList::from_input(&ds, input(&ds, 1));
        let f = p.features_without_score();
        let last = f.cols() - 1;
        for r in 0..f.rows() {
            assert_eq!(f.get(r, last), 0.0);
            assert_eq!(&f.row(r)[..last], &p.features.row(r)[..last]);
        }
    }

    #[test]
    fn cache_prepares_all_lists_with_labels_on_train_only() {
        let ds = tiny();
        let samples: Vec<TrainSample> = (0..3)
            .map(|i| {
                let inp = input(&ds, i % ds.test.len());
                let clicks = vec![false; inp.len()];
                TrainSample { input: inp, clicks }
            })
            .collect();
        let inputs: Vec<RerankInput> = (0..2).map(|i| input(&ds, i)).collect();
        let cache = FeatureCache::build(&ds, &samples, &inputs);
        assert_eq!(cache.train.len(), 3);
        assert_eq!(cache.test.len(), 2);
        assert!(cache.train.iter().all(|p| p.clicks.is_some()));
        assert!(cache.test.iter().all(|p| p.clicks.is_none()));
    }
}
