//! Dependency-free data parallelism on scoped threads.
//!
//! Work is split into one contiguous chunk per worker and the per-chunk
//! results are re-joined in chunk order, so the output order always
//! matches the input order regardless of thread scheduling — parallel
//! execution stays bit-compatible with the sequential path.

/// Number of workers the parallel maps use: the `RAPID_WORKERS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
///
/// An unparsable or zero `RAPID_WORKERS` falls back to the hardware
/// default, with a single warning on stderr naming the rejected value
/// (a silent fallback here once masked a fleet misconfiguration).
pub fn worker_count() -> usize {
    match std::env::var("RAPID_WORKERS") {
        Ok(raw) => parse_workers(&raw).unwrap_or_else(|| {
            eprintln!(
                "rapid-exec: ignoring invalid RAPID_WORKERS={raw:?} \
                 (expected a positive integer); using available parallelism"
            );
            default_workers()
        }),
        Err(_) => default_workers(),
    }
}

/// The hardware-derived worker count used when no valid override is set.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses a `RAPID_WORKERS` override: surrounding whitespace is
/// tolerated, but the value must be a positive integer — `0` is
/// rejected (it used to be silently promoted to 1, hiding typos like
/// `RAPID_WORKERS=O8`).
fn parse_workers(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Maps `f` over `items` on up to [`worker_count`] scoped threads.
///
/// Output ordering is deterministic (`out[i] == f(&items[i])`); with one
/// worker (or one item) no threads are spawned at all.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            // Re-raise a worker panic with its original payload so the
            // real diagnostic (e.g. a shape mismatch) reaches the top,
            // not a generic "worker panicked".
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// Like [`par_map`] but with mutable access to each item (used to fan
/// independent model `fit`/`evaluate` calls across cores).
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let workers = worker_count().min(items.len());
    if workers <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|c| s.spawn(move || c.iter_mut().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_mut_mutates_every_item_in_order() {
        let mut items: Vec<usize> = (0..257).collect();
        let out = par_map_mut(&mut items, |x| {
            *x += 1;
            *x
        });
        assert_eq!(out, (1..258).collect::<Vec<_>>());
        assert_eq!(items, (1..258).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn parse_workers_accepts_positive_integers() {
        assert_eq!(parse_workers("4"), Some(4));
        assert_eq!(parse_workers(" 8 "), Some(8));
        assert_eq!(parse_workers("1"), Some(1));
    }

    #[test]
    fn parse_workers_rejects_garbage_and_zero() {
        assert_eq!(parse_workers(""), None);
        assert_eq!(parse_workers("abc"), None);
        assert_eq!(parse_workers("0"), None);
        assert_eq!(parse_workers("-1"), None);
        assert_eq!(parse_workers("1.5"), None);
        assert_eq!(parse_workers("O8"), None);
    }
}
