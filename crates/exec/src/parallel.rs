//! Dependency-free data parallelism on scoped threads.
//!
//! Work is split into one contiguous chunk per worker and the per-chunk
//! results are re-joined in chunk order, so the output order always
//! matches the input order regardless of thread scheduling — parallel
//! execution stays bit-compatible with the sequential path.
//!
//! Every parallel call reports to the global `rapid-obs` registry:
//! call/item counters, per-chunk sizes, per-worker busy time and spawn
//! wait, and a per-call utilization ratio (total busy / workers × wall).
//!
//! The submitting thread's [`rapid_obs::trace`] context rides along:
//! each spawn site captures [`rapid_obs::trace::current`] and installs
//! it around the worker's chunk, so stages recorded inside a request
//! (`exec/chunk`, autograd ops under `obs-profile`) land in the same
//! trace whether the chunk ran on a pool thread or on the caller.
//!
//! Two failure philosophies coexist. [`par_map`] and [`par_map_mut`]
//! re-raise worker panics — training wants fail-fast, a half-trained
//! model is worthless. [`par_map_degraded`] is for serving-shaped work
//! (re-ranking a batch of requests): a panicking chunk is retried once
//! sequentially, and if it fails again those items fall back to a
//! caller-supplied per-item fallback instead of aborting the batch.
//! The ladder is parallel → sequential retry → fallback, each rung
//! counted (`exec.degraded_*`) and the first warned about.

use rapid_obs::clock;

/// Number of workers the parallel maps use: the `RAPID_WORKERS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
///
/// An unparsable or zero `RAPID_WORKERS` falls back to the hardware
/// default, with a warning naming the rejected value emitted through
/// `rapid-obs` exactly once per process no matter how many parallel
/// calls see the bad variable (a silent fallback here once masked a
/// fleet misconfiguration; a per-call warning floods training logs).
pub fn worker_count() -> usize {
    match std::env::var("RAPID_WORKERS") {
        Ok(raw) => parse_workers(&raw).unwrap_or_else(|| {
            if rapid_obs::global().once("exec.invalid_workers") {
                rapid_obs::event!(
                    rapid_obs::Level::Warn,
                    "exec",
                    "ignoring invalid RAPID_WORKERS={raw:?} (expected a \
                     positive integer); using available parallelism"
                );
            }
            default_workers()
        }),
        Err(_) => default_workers(),
    }
}

/// The hardware-derived worker count used when no valid override is set.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses a `RAPID_WORKERS` override: surrounding whitespace is
/// tolerated, but the value must be a positive integer — `0` is
/// rejected (it used to be silently promoted to 1, hiding typos like
/// `RAPID_WORKERS=O8`).
fn parse_workers(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// One worker's timing report: how long it waited to start and how long
/// it spent mapping its chunk.
struct WorkerStat {
    wait_ns: u128,
    busy_ns: u128,
    chunk_len: usize,
}

/// Publishes one parallel call's metrics to the global registry.
fn record_call(kind: &str, items: usize, workers: usize, wall_ns: u128, stats: &[WorkerStat]) {
    let reg = rapid_obs::global();
    reg.counter_add(&format!("exec.{kind}.calls"), 1);
    reg.counter_add(&format!("exec.{kind}.items"), items as u64);
    reg.gauge_set("exec.workers", workers as f64);
    let mut busy_total = 0u128;
    for w in stats {
        busy_total += w.busy_ns;
        reg.observe("exec.worker_busy_ms", w.busy_ns as f64 / 1e6);
        reg.observe("exec.spawn_wait_ms", w.wait_ns as f64 / 1e6);
        reg.observe("exec.chunk_items", w.chunk_len as f64);
    }
    if wall_ns > 0 && !stats.is_empty() {
        let util = busy_total as f64 / (wall_ns as f64 * stats.len() as f64);
        reg.observe("exec.utilization", util);
    }
}

/// Maps `f` over `items` on up to [`worker_count`] scoped threads.
///
/// Output ordering is deterministic (`out[i] == f(&items[i])`); with one
/// worker (or one item) no threads are spawned at all.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count().min(items.len());
    if workers <= 1 {
        let out = items.iter().map(f).collect();
        let reg = rapid_obs::global();
        reg.counter_add("exec.par_map.calls", 1);
        reg.counter_add("exec.par_map.items", items.len() as u64);
        return out;
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    let ctx = rapid_obs::trace::current();
    let ctx = &ctx;
    let mut out = Vec::with_capacity(items.len());
    let mut stats = Vec::with_capacity(workers);
    let call_start = clock::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                let spawned_at = clock::now();
                s.spawn(move || {
                    let _trace = rapid_obs::trace::install(ctx.clone());
                    let started = clock::now();
                    let part = c.iter().map(f).collect::<Vec<R>>();
                    let stat = WorkerStat {
                        wait_ns: started.saturating_duration_since(spawned_at).as_nanos(),
                        busy_ns: started.elapsed().as_nanos(),
                        chunk_len: c.len(),
                    };
                    (part, stat)
                })
            })
            .collect();
        for h in handles {
            // Re-raise a worker panic with its original payload so the
            // real diagnostic (e.g. a shape mismatch) reaches the top,
            // not a generic "worker panicked".
            match h.join() {
                Ok((part, stat)) => {
                    out.extend(part);
                    stats.push(stat);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    record_call(
        "par_map",
        items.len(),
        workers,
        call_start.elapsed().as_nanos(),
        &stats,
    );
    out
}

/// Like [`par_map`] but with mutable access to each item (used to fan
/// independent model `fit`/`evaluate` calls across cores).
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let workers = worker_count().min(items.len());
    if workers <= 1 {
        let n = items.len();
        let out = items.iter_mut().map(f).collect();
        let reg = rapid_obs::global();
        reg.counter_add("exec.par_map_mut.calls", 1);
        reg.counter_add("exec.par_map_mut.items", n as u64);
        return out;
    }
    let chunk = items.len().div_ceil(workers);
    let n = items.len();
    let f = &f;
    let ctx = rapid_obs::trace::current();
    let ctx = &ctx;
    let mut out = Vec::with_capacity(n);
    let mut stats = Vec::with_capacity(workers);
    let call_start = clock::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|c| {
                let spawned_at = clock::now();
                s.spawn(move || {
                    let _trace = rapid_obs::trace::install(ctx.clone());
                    let started = clock::now();
                    let part = c.iter_mut().map(f).collect::<Vec<R>>();
                    let stat = WorkerStat {
                        wait_ns: started.saturating_duration_since(spawned_at).as_nanos(),
                        busy_ns: started.elapsed().as_nanos(),
                        chunk_len: c.len(),
                    };
                    (part, stat)
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok((part, stat)) => {
                    out.extend(part);
                    stats.push(stat);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    record_call(
        "par_map_mut",
        n,
        workers,
        call_start.elapsed().as_nanos(),
        &stats,
    );
    out
}

/// Runs one chunk, absorbing panics (the worker's own and injected
/// `exec.chunk` faults alike). `None` means the chunk failed. When the
/// calling thread carries a trace context, the chunk is recorded as a
/// nested `exec/chunk` stage (panicking chunks included — a tail
/// exemplar should show the time the failed attempt burned).
fn run_chunk<T, R>(chunk: &[T], f: &(impl Fn(&T) -> R + Sync)) -> Option<Vec<R>> {
    let c0 = clock::now();
    let c0_us = clock::wall_micros();
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rapid_faults::fire("exec.chunk");
        chunk.iter().map(f).collect::<Vec<R>>()
    }))
    .ok();
    rapid_obs::trace::record_stage_nested("exec/chunk", c0_us, c0.elapsed());
    out
}

/// Like [`par_map`], but a worker panic degrades instead of aborting:
/// the failed chunk is retried once sequentially, and if that fails too
/// each of its items gets `fallback(&item)` (for re-ranking, the
/// initial ordering). The output is always full-length and
/// order-preserving, so a batch of requests is never lost to one
/// poisoned list.
///
/// Degradation telemetry: `exec.degraded_chunks` / `exec.degraded_requests`
/// count what left the parallel fast path, `exec.retry_recovered` items
/// the sequential retry saved, `exec.fallback_requests` items answered
/// by the fallback — plus a `warn` event per degraded chunk.
pub fn par_map_degraded<T, R, F, G>(items: &[T], f: F, fallback: G) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    G: Fn(&T) -> R,
{
    if items.is_empty() {
        return Vec::new();
    }
    let reg = rapid_obs::global();
    let workers = worker_count().min(items.len());
    let chunk = items.len().div_ceil(workers.max(1));
    let f = &f;
    let ctx = rapid_obs::trace::current();
    let ctx = &ctx;
    let call_start = clock::now();
    let mut stats = Vec::with_capacity(workers);
    // One result slot per chunk; `None` marks a chunk whose worker
    // panicked (or whose result never arrived), to be repaired below.
    let mut parts: Vec<Option<Vec<R>>> = Vec::with_capacity(workers);
    if workers <= 1 {
        parts.push(run_chunk(items, f));
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|c| {
                    let spawned_at = clock::now();
                    s.spawn(move || {
                        let _trace = rapid_obs::trace::install(ctx.clone());
                        let started = clock::now();
                        let part = run_chunk(c, f);
                        let stat = WorkerStat {
                            wait_ns: started.saturating_duration_since(spawned_at).as_nanos(),
                            busy_ns: started.elapsed().as_nanos(),
                            chunk_len: c.len(),
                        };
                        (part, stat)
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok((part, stat)) => {
                        parts.push(part);
                        stats.push(stat);
                    }
                    // run_chunk already absorbs worker panics, so a
                    // join error can only come from a panicking Drop in
                    // the payload — treat the chunk as failed rather
                    // than aborting the batch.
                    Err(_) => parts.push(None),
                }
            }
        });
    }
    let mut out = Vec::with_capacity(items.len());
    for (idx, part) in parts.into_iter().enumerate() {
        let chunk_items = &items[idx * chunk..(idx * chunk + chunk).min(items.len())];
        match part {
            Some(part) => out.extend(part),
            None => {
                reg.counter_add("exec.degraded_chunks", 1);
                reg.counter_add("exec.degraded_requests", chunk_items.len() as u64);
                rapid_obs::event!(
                    rapid_obs::Level::Warn,
                    "exec",
                    "worker panicked on chunk {idx} ({} items); retrying sequentially",
                    chunk_items.len()
                );
                match run_chunk(chunk_items, f) {
                    Some(part) => {
                        reg.counter_add("exec.retry_recovered", chunk_items.len() as u64);
                        out.extend(part);
                    }
                    None => {
                        reg.counter_add("exec.fallback_requests", chunk_items.len() as u64);
                        rapid_obs::event!(
                            rapid_obs::Level::Warn,
                            "exec",
                            "chunk {idx} failed again sequentially; \
                             answering {} items with the fallback",
                            chunk_items.len()
                        );
                        out.extend(chunk_items.iter().map(&fallback));
                    }
                }
            }
        }
    }
    record_call(
        "par_map_degraded",
        items.len(),
        workers,
        call_start.elapsed().as_nanos(),
        &stats,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_mut_mutates_every_item_in_order() {
        let mut items: Vec<usize> = (0..257).collect();
        let out = par_map_mut(&mut items, |x| {
            *x += 1;
            *x
        });
        assert_eq!(out, (1..258).collect::<Vec<_>>());
        assert_eq!(items, (1..258).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn invalid_workers_env_warns_exactly_once() {
        std::env::set_var("RAPID_WORKERS", "bogus-workers");
        let a = worker_count();
        let b = worker_count();
        std::env::remove_var("RAPID_WORKERS");
        assert!(a >= 1 && b >= 1, "invalid override must still fall back");
        let snap = rapid_obs::global().snapshot();
        let warnings = snap
            .events()
            .iter()
            .filter(|e| e.message.contains("bogus-workers"))
            .count();
        assert_eq!(warnings, 1, "one warning per process, not per call");
    }

    #[test]
    fn par_map_publishes_call_metrics() {
        let before = rapid_obs::global().snapshot().counter("exec.par_map.calls");
        let items: Vec<usize> = (0..64).collect();
        let _ = par_map(&items, |&x| x + 1);
        let snap = rapid_obs::global().snapshot();
        assert!(snap.counter("exec.par_map.calls") > before);
        assert!(snap.counter("exec.par_map.items") >= 64);
    }

    #[test]
    fn par_map_degraded_matches_par_map_when_nothing_fails() {
        let items: Vec<usize> = (0..500).collect();
        let out = par_map_degraded(&items, |&x| x * 3, |_| usize::MAX);
        assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
        assert!(!out.contains(&usize::MAX), "no item fell back");
    }

    #[test]
    fn panicking_items_degrade_to_the_fallback_without_aborting() {
        let items: Vec<usize> = (0..100).collect();
        let before = rapid_obs::global().snapshot();
        let out = par_map_degraded(
            &items,
            |&x| {
                assert!(x != 41, "poisoned item");
                x * 2
            },
            |&x| x + 1_000_000,
        );
        assert_eq!(out.len(), items.len(), "degraded output is full-length");
        // Items outside the poisoned chunk are computed normally; item
        // 41's chunk (parallel AND sequential retry both panic) answers
        // with the fallback.
        assert!(out.contains(&1_000_041));
        for (i, v) in out.iter().enumerate() {
            assert!(
                *v == i * 2 || *v == i + 1_000_000,
                "item {i} must be computed or fallback, got {v}"
            );
        }
        let snap = rapid_obs::global().snapshot();
        assert!(snap.counter("exec.degraded_chunks") > before.counter("exec.degraded_chunks"));
        assert!(snap.counter("exec.degraded_requests") > before.counter("exec.degraded_requests"));
        assert!(snap.counter("exec.fallback_requests") > before.counter("exec.fallback_requests"));
    }

    #[test]
    fn transient_panics_recover_on_the_sequential_retry() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Panics only on its first call for item 7 — the parallel pass
        // fails, the sequential retry succeeds.
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let items: Vec<usize> = (0..8).collect();
        let before = rapid_obs::global()
            .snapshot()
            .counter("exec.retry_recovered");
        let out = par_map_degraded(
            &items,
            |&x| {
                if x == 7 && CALLS.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient failure");
                }
                x * 10
            },
            |_| usize::MAX,
        );
        assert_eq!(out, (0..8).map(|x| x * 10).collect::<Vec<_>>());
        let after = rapid_obs::global()
            .snapshot()
            .counter("exec.retry_recovered");
        assert!(after > before, "retry recovery must be counted");
    }

    #[test]
    fn degraded_chunks_record_into_the_active_trace() {
        static REG: std::sync::OnceLock<rapid_obs::Registry> = std::sync::OnceLock::new();
        let reg = REG.get_or_init(rapid_obs::Registry::new);
        {
            let mut g = rapid_obs::trace::start_request_in(reg, "exec-test");
            g.set_latency_hist("exec.test_ms");
            g.set_tail_threshold_ms(0.0); // force exemplar retention
            let items: Vec<usize> = (0..64).collect();
            let out = par_map_degraded(&items, |&x| x + 1, |_| 0);
            assert_eq!(out.len(), 64);
        }
        let snap = reg.snapshot();
        let ex = snap
            .exemplars()
            .iter()
            .find(|e| e.hist == "exec.test_ms")
            .expect("tail exemplar retained");
        assert!(
            ex.stages.iter().any(|s| s.name == "exec/chunk" && s.nested),
            "exec/chunk stage must join the request trace: {:?}",
            ex.stages
        );
    }

    #[test]
    fn parse_workers_accepts_positive_integers() {
        assert_eq!(parse_workers("4"), Some(4));
        assert_eq!(parse_workers(" 8 "), Some(8));
        assert_eq!(parse_workers("1"), Some(1));
    }

    #[test]
    fn parse_workers_rejects_garbage_and_zero() {
        assert_eq!(parse_workers(""), None);
        assert_eq!(parse_workers("abc"), None);
        assert_eq!(parse_workers("0"), None);
        assert_eq!(parse_workers("-1"), None);
        assert_eq!(parse_workers("1.5"), None);
        assert_eq!(parse_workers("O8"), None);
    }
}
