//! Dependency-free data parallelism on scoped threads.
//!
//! Work is split into one contiguous chunk per worker and the per-chunk
//! results are re-joined in chunk order, so the output order always
//! matches the input order regardless of thread scheduling — parallel
//! execution stays bit-compatible with the sequential path.
//!
//! Every parallel call reports to the global `rapid-obs` registry:
//! call/item counters, per-chunk sizes, per-worker busy time and spawn
//! wait, and a per-call utilization ratio (total busy / workers × wall).

use rapid_obs::clock;

/// Number of workers the parallel maps use: the `RAPID_WORKERS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
///
/// An unparsable or zero `RAPID_WORKERS` falls back to the hardware
/// default, with a warning naming the rejected value emitted through
/// `rapid-obs` exactly once per process no matter how many parallel
/// calls see the bad variable (a silent fallback here once masked a
/// fleet misconfiguration; a per-call warning floods training logs).
pub fn worker_count() -> usize {
    match std::env::var("RAPID_WORKERS") {
        Ok(raw) => parse_workers(&raw).unwrap_or_else(|| {
            if rapid_obs::global().once("exec.invalid_workers") {
                rapid_obs::event!(
                    rapid_obs::Level::Warn,
                    "exec",
                    "ignoring invalid RAPID_WORKERS={raw:?} (expected a \
                     positive integer); using available parallelism"
                );
            }
            default_workers()
        }),
        Err(_) => default_workers(),
    }
}

/// The hardware-derived worker count used when no valid override is set.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses a `RAPID_WORKERS` override: surrounding whitespace is
/// tolerated, but the value must be a positive integer — `0` is
/// rejected (it used to be silently promoted to 1, hiding typos like
/// `RAPID_WORKERS=O8`).
fn parse_workers(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// One worker's timing report: how long it waited to start and how long
/// it spent mapping its chunk.
struct WorkerStat {
    wait_ns: u128,
    busy_ns: u128,
    chunk_len: usize,
}

/// Publishes one parallel call's metrics to the global registry.
fn record_call(kind: &str, items: usize, workers: usize, wall_ns: u128, stats: &[WorkerStat]) {
    let reg = rapid_obs::global();
    reg.counter_add(&format!("exec.{kind}.calls"), 1);
    reg.counter_add(&format!("exec.{kind}.items"), items as u64);
    reg.gauge_set("exec.workers", workers as f64);
    let mut busy_total = 0u128;
    for w in stats {
        busy_total += w.busy_ns;
        reg.observe("exec.worker_busy_ms", w.busy_ns as f64 / 1e6);
        reg.observe("exec.spawn_wait_ms", w.wait_ns as f64 / 1e6);
        reg.observe("exec.chunk_items", w.chunk_len as f64);
    }
    if wall_ns > 0 && !stats.is_empty() {
        let util = busy_total as f64 / (wall_ns as f64 * stats.len() as f64);
        reg.observe("exec.utilization", util);
    }
}

/// Maps `f` over `items` on up to [`worker_count`] scoped threads.
///
/// Output ordering is deterministic (`out[i] == f(&items[i])`); with one
/// worker (or one item) no threads are spawned at all.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count().min(items.len());
    if workers <= 1 {
        let out = items.iter().map(f).collect();
        let reg = rapid_obs::global();
        reg.counter_add("exec.par_map.calls", 1);
        reg.counter_add("exec.par_map.items", items.len() as u64);
        return out;
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    let mut out = Vec::with_capacity(items.len());
    let mut stats = Vec::with_capacity(workers);
    let call_start = clock::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                let spawned_at = clock::now();
                s.spawn(move || {
                    let started = clock::now();
                    let part = c.iter().map(f).collect::<Vec<R>>();
                    let stat = WorkerStat {
                        wait_ns: started.saturating_duration_since(spawned_at).as_nanos(),
                        busy_ns: started.elapsed().as_nanos(),
                        chunk_len: c.len(),
                    };
                    (part, stat)
                })
            })
            .collect();
        for h in handles {
            // Re-raise a worker panic with its original payload so the
            // real diagnostic (e.g. a shape mismatch) reaches the top,
            // not a generic "worker panicked".
            match h.join() {
                Ok((part, stat)) => {
                    out.extend(part);
                    stats.push(stat);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    record_call(
        "par_map",
        items.len(),
        workers,
        call_start.elapsed().as_nanos(),
        &stats,
    );
    out
}

/// Like [`par_map`] but with mutable access to each item (used to fan
/// independent model `fit`/`evaluate` calls across cores).
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let workers = worker_count().min(items.len());
    if workers <= 1 {
        let n = items.len();
        let out = items.iter_mut().map(f).collect();
        let reg = rapid_obs::global();
        reg.counter_add("exec.par_map_mut.calls", 1);
        reg.counter_add("exec.par_map_mut.items", n as u64);
        return out;
    }
    let chunk = items.len().div_ceil(workers);
    let n = items.len();
    let f = &f;
    let mut out = Vec::with_capacity(n);
    let mut stats = Vec::with_capacity(workers);
    let call_start = clock::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|c| {
                let spawned_at = clock::now();
                s.spawn(move || {
                    let started = clock::now();
                    let part = c.iter_mut().map(f).collect::<Vec<R>>();
                    let stat = WorkerStat {
                        wait_ns: started.saturating_duration_since(spawned_at).as_nanos(),
                        busy_ns: started.elapsed().as_nanos(),
                        chunk_len: c.len(),
                    };
                    (part, stat)
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok((part, stat)) => {
                    out.extend(part);
                    stats.push(stat);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    record_call(
        "par_map_mut",
        n,
        workers,
        call_start.elapsed().as_nanos(),
        &stats,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_mut_mutates_every_item_in_order() {
        let mut items: Vec<usize> = (0..257).collect();
        let out = par_map_mut(&mut items, |x| {
            *x += 1;
            *x
        });
        assert_eq!(out, (1..258).collect::<Vec<_>>());
        assert_eq!(items, (1..258).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn invalid_workers_env_warns_exactly_once() {
        std::env::set_var("RAPID_WORKERS", "bogus-workers");
        let a = worker_count();
        let b = worker_count();
        std::env::remove_var("RAPID_WORKERS");
        assert!(a >= 1 && b >= 1, "invalid override must still fall back");
        let snap = rapid_obs::global().snapshot();
        let warnings = snap
            .events()
            .iter()
            .filter(|e| e.message.contains("bogus-workers"))
            .count();
        assert_eq!(warnings, 1, "one warning per process, not per call");
    }

    #[test]
    fn par_map_publishes_call_metrics() {
        let before = rapid_obs::global().snapshot().counter("exec.par_map.calls");
        let items: Vec<usize> = (0..64).collect();
        let _ = par_map(&items, |&x| x + 1);
        let snap = rapid_obs::global().snapshot();
        assert!(snap.counter("exec.par_map.calls") > before);
        assert!(snap.counter("exec.par_map.items") >= 64);
    }

    #[test]
    fn parse_workers_accepts_positive_integers() {
        assert_eq!(parse_workers("4"), Some(4));
        assert_eq!(parse_workers(" 8 "), Some(8));
        assert_eq!(parse_workers("1"), Some(1));
    }

    #[test]
    fn parse_workers_rejects_garbage_and_zero() {
        assert_eq!(parse_workers(""), None);
        assert_eq!(parse_workers("abc"), None);
        assert_eq!(parse_workers("0"), None);
        assert_eq!(parse_workers("-1"), None);
        assert_eq!(parse_workers("1.5"), None);
        assert_eq!(parse_workers("O8"), None);
    }
}
