//! Dependency-free data parallelism on scoped threads.
//!
//! Work is split into one contiguous chunk per worker and the per-chunk
//! results are re-joined in chunk order, so the output order always
//! matches the input order regardless of thread scheduling — parallel
//! execution stays bit-compatible with the sequential path.

/// Number of workers the parallel maps use: the `RAPID_WORKERS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("RAPID_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to [`worker_count`] scoped threads.
///
/// Output ordering is deterministic (`out[i] == f(&items[i])`); with one
/// worker (or one item) no threads are spawned at all.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("par_map worker panicked"));
        }
    });
    out
}

/// Like [`par_map`] but with mutable access to each item (used to fan
/// independent model `fit`/`evaluate` calls across cores).
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let workers = worker_count().min(items.len());
    if workers <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|c| s.spawn(move || c.iter_mut().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("par_map_mut worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_mut_mutates_every_item_in_order() {
        let mut items: Vec<usize> = (0..257).collect();
        let out = par_map_mut(&mut items, |x| {
            *x += 1;
            *x
        });
        assert_eq!(out, (1..258).collect::<Vec<_>>());
        assert_eq!(items, (1..258).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }
}
