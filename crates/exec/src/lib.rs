//! The execution layer: prepared per-list inputs and dependency-free
//! parallelism for the train/infer hot path.
//!
//! Re-ranking sits on the request hot path of a production recommender,
//! so feature assembly must happen once, not on every forward pass of
//! every epoch. This crate provides:
//!
//! * [`RerankInput`] / [`TrainSample`] — the raw per-request inputs
//!   (moved here from `rapid-rerankers`, which re-exports them).
//! * [`PreparedList`] — one list with everything a model needs
//!   materialised up front: the `(L, d)` feature matrix, the items'
//!   topic-coverage rows, the `(L, m)` marginal-diversity (novelty)
//!   matrix, and the sigmoid relevance proxy.
//! * [`FeatureCache`] — all train/test lists of an experiment prepared
//!   in one pass, so epochs iterate over cached matrices.
//! * [`par_map`] / [`par_map_mut`] — a scoped-thread parallel map
//!   (`std::thread::scope`, no external dependencies) with
//!   deterministic output ordering; worker count comes from
//!   [`worker_count`], overridable via the `RAPID_WORKERS` environment
//!   variable.
//! * [`par_map_degraded`] — the serving-path variant that degrades on
//!   worker panics (sequential retry, then per-item fallback) instead
//!   of aborting the batch.

mod input;
mod parallel;
mod prepared;

pub use input::{RerankInput, TrainSample};
pub use parallel::{par_map, par_map_degraded, par_map_mut, worker_count};
pub use prepared::{
    item_feature_dim, item_features, list_feature_matrix, FeatureCache, PreparedList,
};
