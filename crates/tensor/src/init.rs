//! Random initialisation helpers for [`Matrix`].
//!
//! All constructors take an explicit RNG so callers control seeding; the
//! whole workspace threads `StdRng::seed_from_u64` seeds through these.

use crate::Matrix;
use rand::Rng;

impl Matrix {
    /// Matrix with elements drawn uniformly from `[low, high)`.
    pub fn rand_uniform(rows: usize, cols: usize, low: f32, high: f32, rng: &mut impl Rng) -> Self {
        assert!(low <= high, "rand_uniform: low {low} > high {high}");
        let data = (0..rows * cols).map(|_| rng.gen_range(low..high)).collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Matrix with standard-normal elements scaled by `std` around `mean`
    /// (Box–Muller, no external distribution crate needed here).
    pub fn rand_normal(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut impl Rng) -> Self {
        let data = (0..rows * cols)
            .map(|_| mean + std * sample_standard_normal(rng))
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Xavier/Glorot uniform initialisation for a `fan_in x fan_out`
    /// weight matrix: `U(-b, b)` with `b = sqrt(6 / (fan_in + fan_out))`.
    pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Self {
        let b = xavier_bound(fan_in, fan_out);
        Self::rand_uniform(fan_in, fan_out, -b, b, rng)
    }
}

/// The Glorot bound `sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_bound(fan_in: usize, fan_out: usize) -> f32 {
    (6.0 / (fan_in + fan_out) as f32).sqrt()
}

/// One standard normal sample via the Box–Muller transform.
fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::rand_uniform(20, 20, -0.5, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_has_roughly_correct_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::rand_normal(100, 100, 1.0, 2.0, &mut rng);
        let mean = m.mean();
        let var = m.map(|v| (v - mean) * (v - mean)).mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn xavier_bound_matches_formula() {
        assert!((xavier_bound(3, 3) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn seeding_is_deterministic() {
        let a = Matrix::rand_uniform(4, 4, 0.0, 1.0, &mut StdRng::seed_from_u64(1));
        let b = Matrix::rand_uniform(4, 4, 0.0, 1.0, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }
}
