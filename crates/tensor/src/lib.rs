//! Dense matrix substrate for the RAPID reproduction.
//!
//! Every numerical component in this workspace — the autodiff engine, the
//! neural layers, the baselines, the click simulator — is built on the
//! [`Matrix`] type defined here: a row-major, heap-allocated `f32` matrix
//! with the small set of BLAS-like operations the paper's models need.
//!
//! Design notes:
//!
//! * **Panics over `Result` for shape errors.** Shape mismatches are
//!   programmer errors, not recoverable runtime conditions, so (like
//!   `ndarray`) the arithmetic here panics with a message naming the
//!   operation and both shapes. Nothing in this crate does I/O.
//! * **No external math dependencies.** The matmul is a cache-friendly
//!   `ikj`-ordered triple loop, which is plenty for the paper's model
//!   sizes (hidden sizes 8–64, lists of at most 20 items).
//! * **Deterministic randomness.** All random initialisation takes an
//!   explicit `rand::Rng`, so experiments are reproducible given a seed.
//!
//! # Example
//!
//! ```
//! use rapid_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod init;
mod matrix;
mod ops;
// Property tests are orders of magnitude too slow under Miri's
// interpreter; the nightly `cargo miri test` job runs the unit tests
// only.
#[cfg(all(test, not(miri)))]
mod proptests;

pub use init::xavier_bound;
pub use matrix::Matrix;
