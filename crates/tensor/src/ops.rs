//! Arithmetic, reductions, and structural operations on [`Matrix`].
//!
//! Everything here is a plain method returning a fresh matrix (or scalar);
//! in-place variants are provided where the autodiff engine's gradient
//! accumulation benefits from them.

use crate::Matrix;

impl Matrix {
    // ---------------------------------------------------------------
    // Matrix products
    // ---------------------------------------------------------------

    /// Matrix product `self * other`.
    ///
    /// Uses the cache-friendly `i-k-j` loop order so the innermost loop
    /// streams over contiguous rows of both the output and `other`.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: inner dimensions differ ({}x{} * {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (n, k, m) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a_ip) in a_row.iter().enumerate() {
                // lint:allow(float-eq) — exact sparsity skip: zero rows contribute nothing
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = other.row(p);
                for (j, &b_pj) in b_row.iter().enumerate() {
                    out_row[j] += a_ip * b_pj;
                }
            }
        }
        let _ = k;
        out
    }

    /// `selfᵀ * other` without materialising the transpose.
    ///
    /// # Panics
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_at(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_at: row counts differ ({}x{} vs {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (n, m) = (self.cols(), other.cols());
        let mut out = Matrix::zeros(n, m);
        for p in 0..self.rows() {
            let a_row = self.row(p);
            let b_row = other.row(p);
            for (i, &a_pi) in a_row.iter().enumerate() {
                // lint:allow(float-eq) — exact sparsity skip: zero rows contribute nothing
                if a_pi == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (j, &b_pj) in b_row.iter().enumerate() {
                    out_row[j] += a_pi * b_pj;
                }
            }
        }
        out
    }

    /// `self * otherᵀ` without materialising the transpose.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_bt: col counts differ ({}x{} vs {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (n, m) = (self.rows(), other.rows());
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, out_cell) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (a, b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *out_cell = acc;
            }
        }
        out
    }

    /// Transposed copy of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols(), self.rows());
        for r in 0..self.rows() {
            for c in 0..self.cols() {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Dot product of two matrices viewed as flat vectors.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn dot(&self, other: &Matrix) -> f32 {
        self.assert_same_shape(other, "dot");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a * b)
            .sum()
    }

    // ---------------------------------------------------------------
    // Elementwise arithmetic
    // ---------------------------------------------------------------

    /// Elementwise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "add");
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "sub");
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product `self ⊙ other`.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "mul");
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise quotient `self / other`.
    pub fn div(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "div");
        self.zip_map(other, |a, b| a / b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Matrix {
        self.map(|v| v + s)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.assert_same_shape(other, "add_assign");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
    }

    /// In-place `self += s * other` (axpy).
    pub fn add_scaled_assign(&mut self, other: &Matrix, s: f32) {
        self.assert_same_shape(other, "add_scaled_assign");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += s * b;
        }
    }

    /// Applies `f` to each element, producing a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix::from_vec(
            self.rows(),
            self.cols(),
            self.as_slice().iter().map(|&v| f(v)).collect(),
        )
    }

    /// Applies `f` pairwise to elements of `self` and `other`.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        self.assert_same_shape(other, "zip_map");
        Matrix::from_vec(
            self.rows(),
            self.cols(),
            self.as_slice()
                .iter()
                .zip(other.as_slice())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
    }

    // ---------------------------------------------------------------
    // Broadcasting
    // ---------------------------------------------------------------

    /// Adds the `1 x cols` row vector `row` to every row of `self`.
    ///
    /// # Panics
    /// Panics if `row` is not `1 x self.cols()`.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(
            (1, self.cols()),
            row.shape(),
            "add_row_broadcast: expected 1x{} bias, got {}x{}",
            self.cols(),
            row.rows(),
            row.cols()
        );
        let mut out = self.clone();
        let bias = row.as_slice();
        for r in 0..out.rows() {
            for (v, b) in out.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
        out
    }

    /// Multiplies every row of `self` elementwise by the `1 x cols`
    /// row vector `row`.
    pub fn mul_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(
            (1, self.cols()),
            row.shape(),
            "mul_row_broadcast: expected 1x{} vector, got {}x{}",
            self.cols(),
            row.rows(),
            row.cols()
        );
        let mut out = self.clone();
        let w = row.as_slice();
        for r in 0..out.rows() {
            for (v, b) in out.row_mut(r).iter_mut().zip(w) {
                *v *= b;
            }
        }
        out
    }

    // ---------------------------------------------------------------
    // Nonlinearities
    // ---------------------------------------------------------------

    /// Elementwise logistic sigmoid, computed in a numerically stable
    /// split form.
    pub fn sigmoid(&self) -> Matrix {
        self.map(stable_sigmoid)
    }

    /// Elementwise `tanh`.
    pub fn tanh(&self) -> Matrix {
        self.map(f32::tanh)
    }

    /// Elementwise `max(0, x)`.
    pub fn relu(&self) -> Matrix {
        self.map(|v| v.max(0.0))
    }

    /// Row-wise softmax with the max-subtraction trick.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    // ---------------------------------------------------------------
    // Reductions
    // ---------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements (`0.0` for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Column vector (`rows x 1`) of per-row sums.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), 1);
        for r in 0..self.rows() {
            out.set(r, 0, self.row(r).iter().sum());
        }
        out
    }

    /// Row vector (`1 x cols`) of per-column sums.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols());
        for r in 0..self.rows() {
            for (c, v) in self.row(r).iter().enumerate() {
                out.as_mut_slice()[c] += v;
            }
        }
        out
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Index of the maximum element of a flattened matrix; ties break to
    /// the earliest index. Returns `None` for an empty matrix.
    pub fn argmax(&self) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        let mut best = 0;
        let mut best_v = self.as_slice()[0];
        for (i, &v) in self.as_slice().iter().enumerate().skip(1) {
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        Some(best)
    }

    /// `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.as_slice().iter().all(|v| v.is_finite())
    }

    // ---------------------------------------------------------------
    // Structural operations
    // ---------------------------------------------------------------

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "concat_cols: row counts differ ({} vs {})",
            self.rows(),
            other.rows()
        );
        let cols = self.cols() + other.cols();
        let mut data = Vec::with_capacity(self.rows() * cols);
        for r in 0..self.rows() {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix::from_vec(self.rows(), cols, data)
    }

    /// Horizontal concatenation of several matrices with equal row counts.
    pub fn concat_cols_all(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols_all: no parts");
        let rows = parts[0].rows();
        let cols: usize = parts.iter().map(|p| p.cols()).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for p in parts {
                assert_eq!(
                    p.rows(),
                    rows,
                    "concat_cols_all: inconsistent row counts ({} vs {})",
                    p.rows(),
                    rows
                );
                data.extend_from_slice(p.row(r));
            }
        }
        Matrix::from_vec(rows, cols, data)
    }

    /// Vertical concatenation of several matrices with equal column counts.
    pub fn concat_rows_all(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows_all: no parts");
        let cols = parts[0].cols();
        let rows: usize = parts.iter().map(|p| p.rows()).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(
                p.cols(),
                cols,
                "concat_rows_all: inconsistent col counts ({} vs {})",
                p.cols(),
                cols
            );
            data.extend_from_slice(p.as_slice());
        }
        Matrix::from_vec(rows, cols, data)
    }

    /// Copy of columns `start..end`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or reversed.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols(),
            "slice_cols: invalid range {start}..{end} for {} cols",
            self.cols()
        );
        let cols = end - start;
        let mut data = Vec::with_capacity(self.rows() * cols);
        for r in 0..self.rows() {
            data.extend_from_slice(&self.row(r)[start..end]);
        }
        Matrix::from_vec(self.rows(), cols, data)
    }

    /// Copy of rows `start..end`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or reversed.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows(),
            "slice_rows: invalid range {start}..{end} for {} rows",
            self.rows()
        );
        let data = self.as_slice()[start * self.cols()..end * self.cols()].to_vec();
        Matrix::from_vec(end - start, self.cols(), data)
    }

    /// A new matrix made of the given rows of `self`, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols());
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix::from_vec(indices.len(), self.cols(), data)
    }
}

/// Numerically stable sigmoid: never exponentiates a large positive value.
#[inline]
pub(crate) fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = m22();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_transpose_variants_agree_with_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, 2.0]]);
        assert_eq!(a.matmul_at(&b), a.transpose().matmul(&b));
        let c = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 1.0, 0.0]]);
        assert_eq!(a.matmul_bt(&c), a.matmul(&c.transpose()));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_rejects_bad_shapes() {
        let _ = m22().matmul(&Matrix::zeros(3, 2));
    }

    #[test]
    fn elementwise_ops() {
        let a = m22();
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[2.0, 3.0], &[5.0, 6.0]]));
        assert_eq!(a.sub(&b), Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 2.0]]));
        assert_eq!(a.mul(&b), Matrix::from_rows(&[&[1.0, 2.0], &[6.0, 8.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]));
    }

    #[test]
    fn broadcast_add_and_mul() {
        let a = m22();
        let bias = Matrix::row_vector(&[10.0, 20.0]);
        assert_eq!(
            a.add_row_broadcast(&bias),
            Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]])
        );
        assert_eq!(
            a.mul_row_broadcast(&bias),
            Matrix::from_rows(&[&[10.0, 40.0], &[30.0, 80.0]])
        );
    }

    #[test]
    fn softmax_rows_sum_to_one_and_respect_ordering() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-1.0, 0.0, 1.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.get(r, 0) < s.get(r, 1) && s.get(r, 1) < s.get(r, 2));
        }
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let a = Matrix::row_vector(&[1000.0, 1000.0]);
        let s = a.softmax_rows();
        assert!(s.is_finite());
        assert!((s.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        let a = Matrix::row_vector(&[-100.0, 0.0, 100.0]);
        let s = a.sigmoid();
        assert!(s.is_finite());
        assert!(s.get(0, 0) < 1e-6);
        assert!((s.get(0, 1) - 0.5).abs() < 1e-7);
        assert!(s.get(0, 2) > 1.0 - 1e-6);
    }

    #[test]
    fn reductions() {
        let a = m22();
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.sum_rows(), Matrix::col_vector(&[3.0, 7.0]));
        assert_eq!(a.sum_cols(), Matrix::row_vector(&[4.0, 6.0]));
        assert_eq!(a.norm_sq(), 30.0);
        assert_eq!(a.argmax(), Some(3));
    }

    #[test]
    fn concat_and_slice_round_trip() {
        let a = m22();
        let b = Matrix::from_rows(&[&[9.0], &[8.0]]);
        let cat = a.concat_cols(&b);
        assert_eq!(cat.shape(), (2, 3));
        assert_eq!(cat.slice_cols(0, 2), a);
        assert_eq!(cat.slice_cols(2, 3), b);

        let stacked = Matrix::concat_rows_all(&[&a, &a]);
        assert_eq!(stacked.shape(), (4, 2));
        assert_eq!(stacked.slice_rows(2, 4), a);
    }

    #[test]
    fn select_rows_reorders() {
        let a = m22();
        let sel = a.select_rows(&[1, 0, 1]);
        assert_eq!(sel.row(0), &[3.0, 4.0]);
        assert_eq!(sel.row(1), &[1.0, 2.0]);
        assert_eq!(sel.row(2), &[3.0, 4.0]);
    }

    #[test]
    fn transpose_is_involutive() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }
}
