//! The [`Matrix`] type: a row-major dense `f32` matrix.

use std::fmt;

/// A dense, row-major `f32` matrix.
///
/// This is the single numeric container used throughout the workspace.
/// Element `(r, c)` lives at `data[r * cols + c]`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 0.0)
    }

    /// Creates a `rows x cols` matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows: no rows given");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "Matrix::from_rows: row {i} has length {} but row 0 has length {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates an `n x 1` column vector from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "Matrix::get: index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)` to `value`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "Matrix::set: index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = value;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "Matrix::row: row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "Matrix::row_mut: row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh `Vec`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(
            c < self.cols,
            "Matrix::col: col {c} out of bounds for {} cols",
            self.cols
        );
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Asserts that `self` and `other` have the same shape; `op` names
    /// the operation in the panic message. Used by the elementwise
    /// operations here and by downstream crates implementing custom ops.
    #[inline]
    pub fn assert_same_shape(&self, other: &Self, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        // Only show a few rows/cols to keep panic messages readable.
        let max_show = 6;
        for r in 0..self.rows.min(max_show) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(max_show) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.get(r, c))?;
            }
            if self.cols > max_show {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_expected_shapes() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        assert_eq!(Matrix::ones(4, 1).as_slice(), &[1.0; 4]);
        assert_eq!(Matrix::full(1, 2, 7.0).as_slice(), &[7.0, 7.0]);
        let id = Matrix::identity(3);
        assert_eq!(id.get(0, 0), 1.0);
        assert_eq!(id.get(0, 1), 0.0);
        assert_eq!(id.get(2, 2), 1.0);
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn vectors_have_correct_orientation() {
        assert_eq!(Matrix::row_vector(&[1.0, 2.0]).shape(), (1, 2));
        assert_eq!(Matrix::col_vector(&[1.0, 2.0]).shape(), (2, 1));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn from_rows_rejects_ragged_rows() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 5.0);
        assert_eq!(m.get(0, 1), 5.0);
        m.row_mut(1)[0] = -1.0;
        assert_eq!(m.get(1, 0), -1.0);
    }

    #[test]
    fn rows_iter_yields_all_rows() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let rows: Vec<&[f32]> = m.rows_iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }
}
