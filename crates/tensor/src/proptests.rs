//! Property-based tests of the matrix algebra: the identities that the
//! autodiff engine's correctness silently depends on.

#![cfg(test)]

use crate::Matrix;
use proptest::prelude::*;

/// Strategy: a matrix with the given shape and bounded values.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    /// (AB)C = A(BC) within f32 tolerance.
    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(approx_eq(&left, &right, 1e-3));
    }

    /// A·I = I·A = A.
    #[test]
    fn identity_is_neutral(a in matrix(4, 4)) {
        let id = Matrix::identity(4);
        prop_assert!(approx_eq(&a.matmul(&id), &a, 1e-6));
        prop_assert!(approx_eq(&id.matmul(&a), &a, 1e-6));
    }

    /// (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn transpose_reverses_products(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(approx_eq(&left, &right, 1e-4));
    }

    /// The fused transpose-products agree with the explicit forms.
    #[test]
    fn fused_transpose_matmuls_agree(a in matrix(3, 4), b in matrix(3, 5), c in matrix(5, 4)) {
        prop_assert!(approx_eq(&a.matmul_at(&b), &a.transpose().matmul(&b), 1e-4));
        prop_assert!(approx_eq(&a.matmul_bt(&c), &a.matmul(&c.transpose()), 1e-4));
    }

    /// Distributivity: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes_over_add(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(approx_eq(&left, &right, 1e-3));
    }

    /// Slicing a column concat recovers the parts exactly.
    #[test]
    fn concat_slice_round_trip(a in matrix(3, 2), b in matrix(3, 5)) {
        let cat = a.concat_cols(&b);
        prop_assert_eq!(cat.slice_cols(0, 2), a);
        prop_assert_eq!(cat.slice_cols(2, 7), b);
    }

    /// Row sums + column sums both total the full sum.
    #[test]
    fn reductions_are_consistent(a in matrix(4, 3)) {
        let total = a.sum();
        prop_assert!((a.sum_rows().sum() - total).abs() < 1e-3);
        prop_assert!((a.sum_cols().sum() - total).abs() < 1e-3);
    }

    /// Softmax rows are probability vectors preserving the argmax.
    #[test]
    fn softmax_preserves_argmax(a in matrix(2, 6)) {
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            let argmax_in = a.row(r)
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.total_cmp(y.1))
                .map(|(i, _)| i);
            let argmax_out = s.row(r)
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.total_cmp(y.1))
                .map(|(i, _)| i);
            prop_assert_eq!(argmax_in, argmax_out);
        }
    }

    /// select_rows is consistent with per-row reads.
    #[test]
    fn select_rows_matches_row_reads(a in matrix(5, 3), idx in proptest::collection::vec(0usize..5, 1..8)) {
        let sel = a.select_rows(&idx);
        for (out_r, &src) in idx.iter().enumerate() {
            prop_assert_eq!(sel.row(out_r), a.row(src));
        }
    }
}
