//! SSD re-ranker: sliding spectrum decomposition over coverage vectors.

use rapid_data::Dataset;
use rapid_diversity::ssd_select;

use crate::common::{offline_clicks_at_k, tune_parameter};
use crate::types::{FitReport, PreparedList, ReRanker};

/// SSD (Huang et al., KDD 2021): greedy selection by relevance plus the
/// orthogonal volume a candidate adds to a sliding window of previous
/// picks. The volume weight `γ` is grid-tuned on training clicks.
#[derive(Debug, Clone)]
pub struct SsdReranker {
    gamma: f32,
    window: usize,
}

impl Default for SsdReranker {
    fn default() -> Self {
        Self {
            gamma: 0.3,
            window: 3,
        }
    }
}

impl SsdReranker {
    /// The current (possibly tuned) volume weight.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }
}

impl ReRanker for SsdReranker {
    fn name(&self) -> &'static str {
        "SSD"
    }

    fn fit_prepared(&mut self, _ds: &Dataset, lists: &[PreparedList]) -> FitReport {
        if lists.is_empty() {
            return FitReport::default();
        }
        let k = lists[0].len().min(10);
        let window = self.window;
        self.gamma = tune_parameter(&[0.05, 0.1, 0.3, 0.6, 1.0], |gamma| {
            lists
                .iter()
                .map(|prep| {
                    let perm = ssd_select(&prep.relevance, &prep.coverage_slices(), gamma, window);
                    offline_clicks_at_k(&perm, prep.labels(), k)
                })
                .sum()
        });
        FitReport::default()
    }

    fn rerank_prepared(&self, _ds: &Dataset, prep: &PreparedList) -> Vec<usize> {
        ssd_select(
            &prep.relevance,
            &prep.coverage_slices(),
            self.gamma,
            self.window,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{is_permutation, RerankInput, TrainSample};
    use rapid_data::{generate, DataConfig, Flavor};

    #[test]
    fn ssd_outputs_permutations_and_tunes() {
        let mut c = DataConfig::new(Flavor::Taobao);
        c.num_users = 15;
        c.num_items = 80;
        c.ranker_train_interactions = 150;
        c.rerank_train_requests = 8;
        c.test_requests = 4;
        let ds = generate(&c);

        let mk_input = |idx: usize| RerankInput {
            user: ds.test[idx].user,
            items: ds.test[idx].candidates.clone(),
            init_scores: (0..ds.test[idx].candidates.len())
                .map(|i| 1.0 - 0.1 * i as f32)
                .collect(),
        };

        let mut model = SsdReranker::default();
        let samples: Vec<TrainSample> = (0..4)
            .map(|i| {
                let inp = mk_input(i);
                let clicks = (0..inp.len()).map(|p| p < 2).collect();
                TrainSample { input: inp, clicks }
            })
            .collect();
        model.fit(&ds, &samples);
        // Clicks follow the initial order → small gamma must win.
        assert!(model.gamma() <= 0.1, "gamma {}", model.gamma());

        let inp = mk_input(0);
        assert!(is_permutation(&model.rerank(&ds, &inp), inp.len()));
    }
}
