//! Shared fixtures for the re-ranker unit tests: a small synthetic
//! world, DCM-labeled training lists, and an offline utility probe.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapid_click::Dcm;
use rapid_data::{generate, DataConfig, Dataset, Flavor};

use crate::types::{RerankInput, TrainSample};

/// A small MovieLens-like world.
pub fn tiny_dataset(seed: u64) -> Dataset {
    let mut c = DataConfig::new(Flavor::MovieLens);
    c.num_users = 50;
    c.num_items = 250;
    c.ranker_train_interactions = 300;
    c.rerank_train_requests = 150;
    c.test_requests = 20;
    c.seed = seed;
    generate(&c)
}

/// Builds `n` DCM-labeled training lists: candidates are ordered by a
/// noisy ground-truth relevance (imitating a decent initial ranker) and
/// clicks come from a λ=0.9 DCM.
pub fn click_samples(ds: &Dataset, n: usize, seed: u64) -> Vec<TrainSample> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let dcm = Dcm::standard(ds.config.list_len, 0.9);
    (0..n)
        .map(|i| {
            let req = &ds.rerank_train[i % ds.rerank_train.len()];
            let mut scored: Vec<(usize, f32)> = req
                .candidates
                .iter()
                .map(|&v| {
                    // A deliberately mediocre initial ranker: strong
                    // score noise leaves clear headroom for re-rankers.
                    let noise: f32 = rng.gen_range(-0.5..0.5);
                    (v, ds.attraction(req.user, v) + noise)
                })
                .collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1));
            let items: Vec<usize> = scored.iter().map(|&(v, _)| v).collect();
            let init_scores: Vec<f32> = scored.iter().map(|&(_, s)| s).collect();
            let input = RerankInput {
                user: req.user,
                items,
                init_scores,
            };
            let phi = dcm.attractions(ds, input.user, &input.items);
            let clicks = dcm.simulate(&phi, &mut rng);
            TrainSample { input, clicks }
        })
        .collect()
}

/// Mean offline `click@5` of a re-ranking policy over labeled samples
/// (labels travel with items — the standard offline protocol).
pub fn top_click_rate(
    _ds: &Dataset,
    samples: &[TrainSample],
    mut policy: impl FnMut(&RerankInput) -> Vec<usize>,
) -> f32 {
    let total: f32 = samples
        .iter()
        .map(|s| {
            let perm = policy(&s.input);
            perm.iter().take(5).filter(|&&i| s.clicks[i]).count() as f32
        })
        .sum();
    total / samples.len() as f32
}
