//! DPP re-ranking and the PD-GAN-style personalized-DPP baseline.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapid_autograd::{ParamStore, Tape, Var};
use rapid_data::Dataset;
use rapid_diversity::{greedy_map, DppKernel};
use rapid_nn::{Activation, Mlp};

use crate::common::{item_feature_dim, offline_clicks_at_k, tune_parameter};
use crate::types::{FitReport, PreparedList, ReRanker};

/// DPP greedy-MAP re-ranker: quality from the initial ranker's scores,
/// similarity from coverage cosine. The quality sharpness `θ` is
/// grid-tuned on training clicks. Items the greedy MAP leaves out
/// (zero marginal gain) are appended by decreasing relevance.
#[derive(Debug, Clone)]
pub struct DppReranker {
    theta: f32,
}

impl Default for DppReranker {
    fn default() -> Self {
        Self { theta: 2.0 }
    }
}

impl DppReranker {
    /// The current (possibly tuned) sharpness.
    pub fn theta(&self) -> f32 {
        self.theta
    }

    fn select(&self, prep: &PreparedList, theta: f32) -> Vec<usize> {
        let kernel =
            DppKernel::from_relevance_and_coverage(&prep.relevance, &prep.coverage_slices(), theta);
        complete_selection(greedy_map(&kernel, prep.len()), &prep.relevance)
    }
}

impl ReRanker for DppReranker {
    fn name(&self) -> &'static str {
        "DPP"
    }

    fn fit_prepared(&mut self, _ds: &Dataset, lists: &[PreparedList]) -> FitReport {
        if lists.is_empty() {
            return FitReport::default();
        }
        let k = lists[0].len().min(10);
        self.theta = tune_parameter(&[8.0, 4.0, 2.0, 1.0, 0.5], |theta| {
            lists
                .iter()
                .map(|prep| {
                    let perm = self.select(prep, theta);
                    offline_clicks_at_k(&perm, prep.labels(), k)
                })
                .sum()
        });
        FitReport::default()
    }

    fn rerank_prepared(&self, _ds: &Dataset, prep: &PreparedList) -> Vec<usize> {
        self.select(prep, self.theta)
    }
}

/// PD-GAN-style personalized DPP (Wu et al., IJCAI 2019).
///
/// A pointwise quality MLP is fitted to clicks (replacing the original's
/// adversarial quality learning — see the crate docs), and the DPP
/// sharpness is *personalized* by the coarse signal the paper ascribes
/// to PD-GAN — "the number of topics favored by the user", which it
/// criticises as having limited expressive power.
///
/// Faithful to its ranking-stage origins, the model scores items
/// **independently and without the initial ranker's score or listwise
/// context** — exactly the weakness §II points out.
pub struct PdGan {
    config: PdGanConfig,
    store: ParamStore,
    mlp: Mlp,
}

/// PD-GAN hyper-parameters.
#[derive(Debug, Clone)]
pub struct PdGanConfig {
    /// Hidden width of the quality MLP.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size (lists per step).
    pub batch: usize,
    /// Base DPP sharpness; the per-user value is
    /// `theta · (1.5 − propensity)`.
    pub theta: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for PdGanConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            epochs: 3,
            lr: 1e-2,
            batch: 16,
            theta: 2.0,
            seed: 0,
        }
    }
}

impl PdGan {
    /// Creates an untrained model for the given dataset shape.
    pub fn new(ds: &Dataset, config: PdGanConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "pdgan.quality",
            &[item_feature_dim(ds), config.hidden, 1],
            Activation::Relu,
            &mut rng,
        );
        Self { config, store, mlp }
    }

    /// Records the quality graph (sigmoid of the MLP logit) for one
    /// list. The input deliberately omits the initial ranker's score
    /// (ranking-stage model) — the score column of the prepared
    /// features is zeroed.
    fn quality_graph(&self, tape: &mut Tape, prep: &PreparedList) -> Var {
        let x = tape.constant(prep.features_without_score());
        let logits = self.mlp.forward(tape, &self.store, x);
        tape.sigmoid(logits)
    }

    /// Per-item learned quality for one list.
    fn qualities(&self, prep: &PreparedList) -> Vec<f32> {
        let mut tape = Tape::new();
        let probs = self.quality_graph(&mut tape, prep);
        tape.value(probs).as_slice().to_vec()
    }

    /// The paper's crude personalization signal: the share of topics the
    /// user has favoured (≥ 2 history interactions), not the full
    /// preference distribution.
    fn user_theta(&self, ds: &Dataset, user: usize) -> f32 {
        let m = ds.num_topics();
        let mut counts = vec![0.0f32; m];
        for &v in &ds.users[user].history {
            for (j, &c) in ds.items[v].coverage.iter().enumerate() {
                counts[j] += c;
            }
        }
        let favored = counts.iter().filter(|&&c| c >= 2.0).count() as f32;
        let propensity = favored / m as f32;
        self.config.theta * (1.5 - propensity)
    }

    /// The shared training body behind `fit_prepared` (no checkpointing)
    /// and `fit_resumable` (crash-safe periodic checkpoints + resume).
    /// Pointwise BCE on clicks (quality model only; no listwise context
    /// by design) — the quality MLP trains unclipped.
    fn fit_impl(
        &mut self,
        lists: &[PreparedList],
        ckpt: Option<&rapid_autograd::CheckpointConfig>,
    ) -> FitReport {
        let mlp = self.mlp.clone();
        crate::common::fit_listwise_opts(
            "PD-GAN",
            &mut self.store,
            lists,
            self.config.epochs,
            self.config.batch,
            self.config.lr,
            self.config.seed,
            crate::common::ListLoss::Bce,
            None,
            ckpt,
            |tape, store, prep| {
                let x = tape.constant(prep.features_without_score());
                mlp.forward(tape, store, x)
            },
        )
    }
}

impl ReRanker for PdGan {
    fn name(&self) -> &'static str {
        "PD-GAN"
    }

    fn fit_prepared(&mut self, _ds: &Dataset, lists: &[PreparedList]) -> FitReport {
        self.fit_impl(lists, None)
    }

    fn fit_resumable(
        &mut self,
        _ds: &Dataset,
        lists: &[PreparedList],
        ckpt: &rapid_autograd::CheckpointConfig,
    ) -> FitReport {
        self.fit_impl(lists, Some(ckpt))
    }

    fn rerank_prepared(&self, ds: &Dataset, prep: &PreparedList) -> Vec<usize> {
        let quality = self.qualities(prep);
        let theta = self.user_theta(ds, prep.user());
        let kernel =
            DppKernel::from_relevance_and_coverage(&quality, &prep.coverage_slices(), theta);
        complete_selection(greedy_map(&kernel, prep.len()), &quality)
    }

    fn record_graph(&self, _ds: &Dataset, prep: &PreparedList, tape: &mut Tape) -> Option<Var> {
        Some(self.quality_graph(tape, prep))
    }
}

/// Greedy MAP can stop early when residual gains vanish; append the
/// leftovers by decreasing relevance so the output is a permutation.
fn complete_selection(mut selected: Vec<usize>, relevance: &[f32]) -> Vec<usize> {
    if selected.len() < relevance.len() {
        let mut rest: Vec<usize> = (0..relevance.len())
            .filter(|i| !selected.contains(i))
            .collect();
        rest.sort_by(|&a, &b| relevance[b].total_cmp(&relevance[a]));
        selected.extend(rest);
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{is_permutation, RerankInput, TrainSample};
    use rapid_data::{generate, DataConfig, Flavor};

    fn tiny() -> Dataset {
        let mut c = DataConfig::new(Flavor::MovieLens);
        c.num_users = 20;
        c.num_items = 100;
        c.ranker_train_interactions = 200;
        c.rerank_train_requests = 10;
        c.test_requests = 5;
        generate(&c)
    }

    fn input(ds: &Dataset, idx: usize) -> RerankInput {
        RerankInput {
            user: ds.test[idx].user,
            items: ds.test[idx].candidates.clone(),
            init_scores: (0..ds.test[idx].candidates.len())
                .map(|i| 1.0 - i as f32 * 0.15)
                .collect(),
        }
    }

    #[test]
    fn dpp_outputs_permutations() {
        let ds = tiny();
        let model = DppReranker::default();
        let inp = input(&ds, 0);
        assert!(is_permutation(&model.rerank(&ds, &inp), inp.len()));
    }

    #[test]
    fn dpp_increases_topic_coverage_over_init() {
        let ds = tiny();
        let model = DppReranker { theta: 0.5 };
        let mut init_cov = 0.0;
        let mut dpp_cov = 0.0;
        for i in 0..ds.test.len() {
            let inp = input(&ds, i);
            let covs = inp.coverages(&ds);
            let perm = model.rerank(&ds, &inp);
            let reordered: Vec<&[f32]> = perm.iter().map(|&p| covs[p]).collect();
            init_cov += rapid_diversity::topic_coverage_at_k(&covs, 5);
            dpp_cov += rapid_diversity::topic_coverage_at_k(&reordered, 5);
        }
        assert!(
            dpp_cov >= init_cov,
            "DPP should not reduce coverage: {dpp_cov} vs {init_cov}"
        );
    }

    #[test]
    fn pdgan_trains_and_outputs_permutations() {
        let ds = tiny();
        let mut model = PdGan::new(
            &ds,
            PdGanConfig {
                epochs: 1,
                ..PdGanConfig::default()
            },
        );
        let samples: Vec<TrainSample> = (0..5)
            .map(|i| {
                let inp = input(&ds, i % ds.test.len());
                let clicks = (0..inp.len()).map(|p| p == 0).collect();
                TrainSample { input: inp, clicks }
            })
            .collect();
        model.fit(&ds, &samples);
        let inp = input(&ds, 0);
        assert!(is_permutation(&model.rerank(&ds, &inp), inp.len()));
    }

    #[test]
    fn pdgan_theta_anticorrelates_with_preference_entropy() {
        // Users with diverse preferences should get a flatter DPP
        // exponent (smaller θ → more diversification). Histories are
        // finite samples, so assert the population-level correlation.
        let ds = tiny();
        let model = PdGan::new(&ds, PdGanConfig::default());
        let xs: Vec<f32> = ds.users.iter().map(|u| u.pref_entropy()).collect();
        let ys: Vec<f32> = ds
            .users
            .iter()
            .map(|u| model.user_theta(&ds, u.id))
            .collect();
        let n = xs.len() as f32;
        let mx = xs.iter().sum::<f32>() / n;
        let my = ys.iter().sum::<f32>() / n;
        let cov: f32 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f32 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let vy: f32 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        let corr = cov / (vx * vy).sqrt().max(1e-9);
        assert!(corr < -0.2, "entropy-theta correlation {corr}");
    }

    #[test]
    fn complete_selection_appends_by_relevance() {
        let perm = complete_selection(vec![2], &[0.1, 0.9, 0.5]);
        assert_eq!(perm, vec![2, 1, 0]);
    }
}
