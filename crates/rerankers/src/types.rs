//! The [`ReRanker`] trait and its input types.

use rapid_data::{Dataset, ItemId, UserId};

/// One re-ranking instance: a user plus the **ordered** initial list `R`
/// with the initial ranker's scores.
#[derive(Debug, Clone)]
pub struct RerankInput {
    /// The requesting user.
    pub user: UserId,
    /// The initial list `R`, best-first.
    pub items: Vec<ItemId>,
    /// Initial-ranker scores aligned with `items`.
    pub init_scores: Vec<f32>,
}

impl RerankInput {
    /// List length `L`.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` for an empty list.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Initial scores squashed to `(0, 1)` — a relevance proxy for the
    /// heuristic diversifiers, which expect probabilities.
    pub fn relevance_probs(&self) -> Vec<f32> {
        self.init_scores
            .iter()
            .map(|&s| 1.0 / (1.0 + (-s).exp()))
            .collect()
    }

    /// Coverage vectors of the listed items, in list order.
    pub fn coverages<'a>(&self, ds: &'a Dataset) -> Vec<&'a [f32]> {
        self.items
            .iter()
            .map(|&v| ds.items[v].coverage.as_slice())
            .collect()
    }
}

/// A labeled training instance: the initial list plus the DCM click
/// feedback observed on it.
#[derive(Debug, Clone)]
pub struct TrainSample {
    /// The list shown.
    pub input: RerankInput,
    /// Click indicator per position of `input.items`.
    pub clicks: Vec<bool>,
}

/// A re-ranking model: trains on click-labeled initial lists, then maps
/// an initial list to a permutation.
pub trait ReRanker {
    /// Display name used in result tables.
    fn name(&self) -> &'static str;

    /// Trains (or tunes) on labeled lists. Heuristic models may no-op.
    fn fit(&mut self, ds: &Dataset, samples: &[TrainSample]);

    /// Returns a permutation: `result[rank] = index into input.items`.
    fn rerank(&self, ds: &Dataset, input: &RerankInput) -> Vec<usize>;

    /// Convenience: the re-ranked item ids, best-first.
    fn rerank_items(&self, ds: &Dataset, input: &RerankInput) -> Vec<ItemId> {
        self.rerank(ds, input)
            .into_iter()
            .map(|i| input.items[i])
            .collect()
    }
}

/// The `Init` row: returns the initial ranking unchanged.
#[derive(Debug, Clone, Default)]
pub struct Identity;

impl ReRanker for Identity {
    fn name(&self) -> &'static str {
        "Init"
    }

    fn fit(&mut self, _ds: &Dataset, _samples: &[TrainSample]) {}

    fn rerank(&self, _ds: &Dataset, input: &RerankInput) -> Vec<usize> {
        (0..input.len()).collect()
    }
}

/// Validates that `perm` is a permutation of `0..n` (used by tests and
/// debug assertions in the evaluation pipeline).
pub fn is_permutation(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_data::{generate, DataConfig, Flavor};

    #[test]
    fn identity_returns_input_order() {
        let mut c = DataConfig::new(Flavor::Taobao);
        c.num_users = 10;
        c.num_items = 50;
        c.ranker_train_interactions = 100;
        c.rerank_train_requests = 2;
        c.test_requests = 2;
        let ds = generate(&c);
        let l = ds.test[0].candidates.len();
        let input = RerankInput {
            user: 0,
            items: ds.test[0].candidates.clone(),
            init_scores: vec![0.0; l],
        };
        let perm = Identity.rerank(&ds, &input);
        assert_eq!(perm, (0..l).collect::<Vec<_>>());
        assert_eq!(Identity.rerank_items(&ds, &input), input.items);
    }

    #[test]
    fn relevance_probs_are_sigmoid() {
        let input = RerankInput {
            user: 0,
            items: vec![0, 1],
            init_scores: vec![0.0, 100.0],
        };
        let p = input.relevance_probs();
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(p[1] > 0.999);
    }

    #[test]
    fn is_permutation_checks() {
        assert!(is_permutation(&[2, 0, 1], 3));
        assert!(!is_permutation(&[0, 0, 1], 3));
        assert!(!is_permutation(&[0, 1], 3));
        assert!(!is_permutation(&[0, 3, 1], 3));
    }
}
