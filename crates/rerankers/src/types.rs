//! The [`ReRanker`] trait and its input types.
//!
//! The input types ([`RerankInput`], [`TrainSample`]) and the prepared
//! execution types ([`PreparedList`], [`FeatureCache`]) live in
//! `rapid-exec`; they are re-exported here so model code and downstream
//! crates keep a single import path.

use rapid_autograd::{Tape, Var};
use rapid_data::{Dataset, ItemId};
pub use rapid_exec::{FeatureCache, PreparedList, RerankInput, TrainSample};

/// What a training run actually did, so timing harnesses can report
/// honest per-batch numbers instead of estimating them from the
/// experiment config.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FitReport {
    /// Optimizer steps taken (0 for heuristics that only grid-tune).
    pub batches: usize,
}

impl FitReport {
    /// A report for `batches` optimizer steps.
    pub fn new(batches: usize) -> Self {
        Self { batches }
    }
}

/// A re-ranking model: trains on click-labeled initial lists, then maps
/// an initial list to a permutation.
///
/// The primary entry points work on [`PreparedList`]s — feature matrices
/// and coverage rows materialised once — so training epochs and batch
/// inference never re-gather inputs from the [`Dataset`]. The legacy
/// `(ds, input)` methods are thin shims that prepare on the fly.
///
/// `Send + Sync` is required so batches of lists (and whole models) can
/// be fanned across scoped threads.
pub trait ReRanker: Send + Sync {
    /// Display name used in result tables.
    fn name(&self) -> &'static str;

    /// Trains (or tunes) on prepared, click-labeled lists. Heuristic
    /// models may no-op. Returns what the run actually did.
    fn fit_prepared(&mut self, ds: &Dataset, lists: &[PreparedList]) -> FitReport;

    /// Crash-safe training: like [`ReRanker::fit_prepared`] but
    /// checkpointing the parameters, optimizer state, and epoch cursor
    /// to `ckpt` every K epochs, and resuming from that file when one
    /// is already there. A resumed run is bit-identical to an
    /// uninterrupted one for every neural model (heuristics fall back
    /// to a plain fit — they finish in one pass and keep no optimizer).
    fn fit_resumable(
        &mut self,
        ds: &Dataset,
        lists: &[PreparedList],
        ckpt: &rapid_autograd::CheckpointConfig,
    ) -> FitReport {
        let _ = ckpt;
        self.fit_prepared(ds, lists)
    }

    /// Returns a permutation of one prepared list:
    /// `result[rank] = index into the list`.
    fn rerank_prepared(&self, ds: &Dataset, prep: &PreparedList) -> Vec<usize>;

    /// Legacy shim: prepares the samples, then trains on them.
    fn fit(&mut self, ds: &Dataset, samples: &[TrainSample]) {
        let lists = FeatureCache::from_samples(ds, samples);
        self.fit_prepared(ds, &lists);
    }

    /// Legacy shim: prepares one list, then re-ranks it.
    fn rerank(&self, ds: &Dataset, input: &RerankInput) -> Vec<usize> {
        self.rerank_prepared(ds, &PreparedList::from_input(ds, input.clone()))
    }

    /// Re-ranks a batch of prepared lists on scoped threads. The output
    /// order matches the input order, and each list's permutation is
    /// identical to a sequential [`ReRanker::rerank_prepared`] call.
    ///
    /// The batch runs under a `rerank_batch` span and records per-list
    /// inference latency as `rerank.<name>.list_ms` in the global
    /// `rapid-obs` registry.
    ///
    /// Serving-path semantics: a worker panic while scoring degrades
    /// instead of aborting the batch — the failed chunk is retried
    /// sequentially, and lists that still fail answer with their
    /// *initial* ranking (the identity permutation), counted as
    /// `exec.degraded_requests` / `exec.fallback_requests`. The output
    /// therefore always holds one valid permutation per input list.
    fn rerank_batch(&self, ds: &Dataset, lists: &[PreparedList]) -> Vec<Vec<usize>> {
        let span = rapid_obs::Span::enter("rerank_batch");
        let metric = format!("rerank.{}.list_ms", self.name());
        let out = rapid_exec::par_map_degraded(
            lists,
            |p| {
                let t0 = rapid_obs::clock::now();
                let perm = self.rerank_prepared(ds, p);
                rapid_obs::global().observe(&metric, t0.elapsed().as_secs_f64() * 1e3);
                perm
            },
            |p| (0..p.len()).collect(),
        );
        rapid_obs::global()
            .counter_add(&format!("rerank.{}.lists", self.name()), lists.len() as u64);
        span.finish();
        out
    }

    /// Convenience: the re-ranked item ids, best-first.
    fn rerank_items(&self, ds: &Dataset, input: &RerankInput) -> Vec<ItemId> {
        self.rerank(ds, input)
            .into_iter()
            .map(|i| input.items[i])
            .collect()
    }

    /// Records this model's scoring graph for one prepared list onto
    /// `tape` and returns the score/logit column, so `rapid-check` can
    /// validate the exact graph the model computes (shape consistency,
    /// no dangling parents) without running an optimizer step.
    ///
    /// Heuristic models that never touch a tape return `None` (the
    /// default); every neural model overrides this with its `forward`.
    fn record_graph(&self, _ds: &Dataset, _prep: &PreparedList, _tape: &mut Tape) -> Option<Var> {
        None
    }

    /// Which training loss caps this model's graph. Matches what the
    /// model passes to `fit_listwise`; only [`Desa`](crate::Desa) trains
    /// pairwise.
    fn loss_kind(&self) -> crate::ListLoss {
        crate::ListLoss::Bce
    }

    /// Records the model's full first-batch *training* graph — the
    /// [`ReRanker::record_graph`] forward pass capped by the model's
    /// training loss ([`ReRanker::loss_kind`]) — and returns the scalar
    /// loss node. This is the graph the `rapid-audit` dataflow analyses
    /// run on: with a loss root, gradient-flow reachability is
    /// meaningful (dead parameters, detached subgraphs).
    ///
    /// Labels come from the list's clicks when it is a labeled training
    /// list; unlabeled lists get a deterministic synthetic labeling
    /// (every third position clicked) so the recorded graph is
    /// reproducible. Heuristics return `None` like `record_graph`.
    fn record_loss_graph(&self, ds: &Dataset, prep: &PreparedList, tape: &mut Tape) -> Option<Var> {
        let logits = self.record_graph(ds, prep, tape)?;
        let labels: Vec<f32> = match &prep.clicks {
            Some(clicks) => clicks.iter().map(|&c| if c { 1.0 } else { 0.0 }).collect(),
            None => (0..prep.len())
                .map(|i| if i % 3 == 0 { 1.0 } else { 0.0 })
                .collect(),
        };
        let loss = match self.loss_kind() {
            crate::ListLoss::Bce => {
                let targets = rapid_tensor::Matrix::from_vec(labels.len(), 1, labels);
                tape.bce_with_logits(logits, &targets)
            }
            crate::ListLoss::Pairwise => tape.pairwise_logistic(logits, &labels),
        };
        Some(loss)
    }
}

/// The `Init` row: returns the initial ranking unchanged.
#[derive(Debug, Clone, Default)]
pub struct Identity;

impl ReRanker for Identity {
    fn name(&self) -> &'static str {
        "Init"
    }

    fn fit_prepared(&mut self, _ds: &Dataset, _lists: &[PreparedList]) -> FitReport {
        FitReport::default()
    }

    fn rerank_prepared(&self, _ds: &Dataset, prep: &PreparedList) -> Vec<usize> {
        (0..prep.len()).collect()
    }
}

/// Validates that `perm` is a permutation of `0..n` (used by tests and
/// debug assertions in the evaluation pipeline).
pub fn is_permutation(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_data::{generate, DataConfig, Flavor};

    #[test]
    fn identity_returns_input_order() {
        let mut c = DataConfig::new(Flavor::Taobao);
        c.num_users = 10;
        c.num_items = 50;
        c.ranker_train_interactions = 100;
        c.rerank_train_requests = 2;
        c.test_requests = 2;
        let ds = generate(&c);
        let l = ds.test[0].candidates.len();
        let input = RerankInput {
            user: 0,
            items: ds.test[0].candidates.clone(),
            init_scores: vec![0.0; l],
        };
        let perm = Identity.rerank(&ds, &input);
        assert_eq!(perm, (0..l).collect::<Vec<_>>());
        assert_eq!(Identity.rerank_items(&ds, &input), input.items);
    }

    #[test]
    fn rerank_batch_matches_sequential_calls() {
        let mut c = DataConfig::new(Flavor::Taobao);
        c.num_users = 10;
        c.num_items = 50;
        c.ranker_train_interactions = 100;
        c.rerank_train_requests = 2;
        c.test_requests = 4;
        let ds = generate(&c);
        let lists: Vec<PreparedList> = ds
            .test
            .iter()
            .map(|req| {
                PreparedList::from_input(
                    &ds,
                    RerankInput {
                        user: req.user,
                        items: req.candidates.clone(),
                        init_scores: vec![0.0; req.candidates.len()],
                    },
                )
            })
            .collect();
        let batch = Identity.rerank_batch(&ds, &lists);
        let sequential: Vec<Vec<usize>> = lists
            .iter()
            .map(|p| Identity.rerank_prepared(&ds, p))
            .collect();
        assert_eq!(batch, sequential);
    }

    #[test]
    fn relevance_probs_are_sigmoid() {
        let input = RerankInput {
            user: 0,
            items: vec![0, 1],
            init_scores: vec![0.0, 100.0],
        };
        let p = input.relevance_probs();
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(p[1] > 0.999);
    }

    #[test]
    fn is_permutation_checks() {
        assert!(is_permutation(&[2, 0, 1], 3));
        assert!(!is_permutation(&[0, 0, 1], 3));
        assert!(!is_permutation(&[0, 1], 3));
        assert!(!is_permutation(&[0, 3, 1], 3));
    }
}
