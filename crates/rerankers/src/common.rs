//! Shared mini-batch iteration, the listwise training loop, and
//! hyper-parameter tuning used by the re-rankers.
//!
//! Feature assembly ([`item_features`], [`list_feature_matrix`]) lives
//! in `rapid-exec` — re-exported here for compatibility — so features
//! are built once per list ([`crate::PreparedList`]) instead of per
//! epoch.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rapid_tensor::Matrix;

pub use rapid_exec::{item_feature_dim, item_features, list_feature_matrix};

use crate::types::{FitReport, PreparedList};

/// Shuffled mini-batch iteration, shared by every neural re-ranker's
/// `fit`. Generic so it serves both prepared lists and raw samples.
pub fn for_each_batch<'a, T>(
    items: &'a [T],
    epochs: usize,
    batch: usize,
    rng: &mut StdRng,
    mut f: impl FnMut(&[&'a T]),
) {
    let mut order: Vec<usize> = (0..items.len()).collect();
    for _ in 0..epochs {
        order.shuffle(rng);
        for chunk in order.chunks(batch.max(1)) {
            let batch_refs: Vec<&T> = chunk.iter().map(|&i| &items[i]).collect();
            f(&batch_refs);
        }
    }
}

/// Which training loss a neural re-ranker uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListLoss {
    /// Pointwise binary cross-entropy on the click indicators (DLCM,
    /// PRM, SetRank, SRGA, RAPID — the paper's Eq. 11).
    Bce,
    /// Pairwise logistic loss over click pairs (DESA).
    Pairwise,
}

/// Shared training loop of every neural re-ranker: shuffled mini-batches
/// of prepared lists, one summed-loss graph per batch, Adam, gradient
/// clipping. A single tape is reused across batches (cleared, capacity
/// kept) so the arena is allocated once per fit instead of once per
/// step.
///
/// `model` is the re-ranker's display name; it keys the telemetry this
/// loop publishes to the global `rapid-obs` registry — per-batch latency
/// (`fit.<model>.batch_ms`), per-epoch mean loss
/// (`fit.<model>.epoch_loss`), graph-validation time, and a final
/// `info` event summarising the run.
///
/// `forward` builds the `(L, 1)` score/logit column for one prepared
/// list. Returns the number of optimizer steps actually taken.
#[allow(clippy::too_many_arguments)]
pub fn fit_listwise(
    model: &'static str,
    store: &mut rapid_autograd::ParamStore,
    lists: &[PreparedList],
    epochs: usize,
    batch: usize,
    lr: f32,
    seed: u64,
    loss_kind: ListLoss,
    forward: impl FnMut(
        &mut rapid_autograd::Tape,
        &rapid_autograd::ParamStore,
        &PreparedList,
    ) -> rapid_autograd::Var,
) -> FitReport {
    fit_listwise_opts(
        model,
        store,
        lists,
        epochs,
        batch,
        lr,
        seed,
        loss_kind,
        Some(5.0),
        None,
        forward,
    )
}

/// The full-control variant of [`fit_listwise`]: callers choose the
/// gradient clip (PD-GAN trains unclipped) and may attach a
/// [`CheckpointConfig`](rapid_autograd::CheckpointConfig) for crash-safe
/// periodic checkpointing with resume.
///
/// Resume is *fast-forward replay*: the checkpoint carries parameters,
/// Adam state, and the epoch cursor, while the shuffle RNG is recreated
/// from `seed` and advanced through the completed epochs' draws. A run
/// killed after epoch N and resumed therefore sees exactly the batch
/// sequence — and produces bit-identical parameters — as one that was
/// never interrupted.
#[allow(clippy::too_many_arguments)]
pub fn fit_listwise_opts(
    model: &'static str,
    store: &mut rapid_autograd::ParamStore,
    lists: &[PreparedList],
    epochs: usize,
    batch: usize,
    lr: f32,
    seed: u64,
    loss_kind: ListLoss,
    clip: Option<f32>,
    ckpt: Option<&rapid_autograd::CheckpointConfig>,
    mut forward: impl FnMut(
        &mut rapid_autograd::Tape,
        &rapid_autograd::ParamStore,
        &PreparedList,
    ) -> rapid_autograd::Var,
) -> FitReport {
    use rapid_autograd::optim::Adam;
    let mut optimizer = Adam::new(lr);
    let checkpointer = ckpt.map(|c| rapid_autograd::Checkpointer::new(c.clone()));
    let start_epoch = resume_into(checkpointer.as_ref(), model, store, &mut optimizer).min(epochs);
    // Replay the completed epochs' RNG consumption so the remaining
    // shuffles match the uninterrupted run draw-for-draw.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..lists.len()).collect();
    for _ in 0..start_epoch {
        order.shuffle(&mut rng);
    }
    let mut tape = rapid_autograd::Tape::new();
    let mut step = TrainStep::new(model, lists.len(), batch, clip);
    if let Some(ck) = checkpointer {
        step = step.with_checkpointer(ck);
    }
    step.resume_from(start_epoch);
    for _ in start_epoch..epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(batch.max(1)) {
            step.begin_batch();
            tape.clear();
            let mut losses = Vec::with_capacity(chunk.len());
            for &i in chunk {
                let prep = &lists[i];
                let logits = forward(&mut tape, store, prep);
                let labels: Vec<f32> = prep
                    .labels()
                    .iter()
                    .map(|&c| if c { 1.0 } else { 0.0 })
                    .collect();
                let loss = match loss_kind {
                    ListLoss::Bce => {
                        let targets = Matrix::from_vec(labels.len(), 1, labels);
                        tape.bce_with_logits(logits, &targets)
                    }
                    ListLoss::Pairwise => tape.pairwise_logistic(logits, &labels),
                };
                losses.push(loss);
            }
            let stacked = tape.concat_cols(&losses);
            let total = tape.mean_all(stacked);
            step.step(&mut tape, total, store, &mut optimizer);
        }
    }
    step.finish(epochs)
}

/// Applies a resumable checkpoint (if `ck` is attached and holds one) to
/// a model's store and optimizer, returning the number of epochs already
/// completed — 0 when starting fresh. Parameters are restored into a
/// clone first, so a checkpoint that does not match the architecture is
/// rejected with a warning and the model trains from scratch unchanged.
pub fn resume_into(
    ck: Option<&rapid_autograd::Checkpointer>,
    model: &str,
    store: &mut rapid_autograd::ParamStore,
    optimizer: &mut dyn rapid_autograd::optim::Optimizer,
) -> usize {
    let Some(ck) = ck else { return 0 };
    let Some(cp) = ck.resume() else { return 0 };
    let Some(state) = cp.optimizer else { return 0 };
    let mut candidate = store.clone();
    if let Err(e) = candidate.restore_from(&cp.params) {
        rapid_obs::event!(
            rapid_obs::Level::Warn,
            "ckpt",
            "{model}: checkpoint does not match the architecture ({e}); \
             training from scratch"
        );
        return 0;
    }
    if !state.m.is_empty() && state.m.len() != candidate.len() {
        rapid_obs::event!(
            rapid_obs::Level::Warn,
            "ckpt",
            "{model}: checkpoint optimizer tracks {} parameters, model has {}; \
             training from scratch",
            state.m.len(),
            candidate.len()
        );
        return 0;
    }
    if let Err(e) = optimizer.restore(state) {
        rapid_obs::event!(
            rapid_obs::Level::Warn,
            "ckpt",
            "{model}: optimizer rejected checkpoint state ({e}); training from scratch"
        );
        return 0;
    }
    *store = candidate;
    rapid_obs::event!(
        rapid_obs::Level::Info,
        "ckpt",
        "{model}: resumed from checkpoint at epoch {} ({} batches done)",
        cp.epochs_done,
        cp.batches_done
    );
    cp.epochs_done as usize
}

/// The shared per-batch backward/update path of every neural training
/// loop — `fit_listwise`, `Rapid::fit_prepared`, and
/// `PdGan::fit_prepared` all drive one of these, so telemetry
/// (`fit.<model>.batch_ms`, `fit.<model>.epoch_loss`), training
/// diagnostics (`RAPID_DIAG` norm traces via
/// [`rapid_autograd::diag::TrainDiag`]), first-batch graph validation,
/// and the NaN/Inf fail-fast live in exactly one place.
///
/// Per batch the owning loop calls [`TrainStep::begin_batch`], records
/// its forward pass and loss onto the tape, then hands the scalar loss
/// node to [`TrainStep::step`]; [`TrainStep::finish`] closes the `fit`
/// span and returns the [`FitReport`].
///
/// # Panics
///
/// [`TrainStep::step`] aborts the run — naming the model, the epoch,
/// and (for gradients) the offending parameter — when the loss or any
/// accumulated gradient goes non-finite. Every optimizer step after
/// such a state would corrupt weights irreversibly, so failing fast is
/// strictly better than training on.
pub struct TrainStep {
    model: &'static str,
    batch_metric: String,
    batches_per_epoch: usize,
    batches: usize,
    /// Batches already accounted for by a resumed checkpoint; the
    /// [`FitReport`] counts only the steps this run actually took.
    start_batches: usize,
    /// Global grad-norm clip applied after backward; `None` for loops
    /// that deliberately train unclipped (PD-GAN).
    clip: Option<f32>,
    /// Writes a checkpoint every K epoch boundaries when attached.
    checkpointer: Option<rapid_autograd::Checkpointer>,
    epoch_loss: EpochLoss,
    diag: rapid_autograd::diag::TrainDiag,
    fit_span: Option<rapid_obs::Span<'static>>,
    batch_start: Option<std::time::Instant>,
}

impl TrainStep {
    /// A step driver for `model` training on `num_lists` lists in
    /// mini-batches of `batch`, clipping the global gradient norm to
    /// `clip` (when given) before each update. Opens the `fit` span.
    pub fn new(model: &'static str, num_lists: usize, batch: usize, clip: Option<f32>) -> Self {
        let batches_per_epoch = num_lists.div_ceil(batch.max(1)).max(1);
        Self {
            model,
            batch_metric: format!("fit.{model}.batch_ms"),
            batches_per_epoch,
            batches: 0,
            start_batches: 0,
            clip,
            checkpointer: None,
            epoch_loss: EpochLoss::new(model, batches_per_epoch),
            diag: rapid_autograd::diag::TrainDiag::new(model),
            fit_span: Some(rapid_obs::Span::enter("fit")),
            batch_start: None,
        }
    }

    /// Attaches a checkpointer: every K-th epoch boundary writes a
    /// crash-safe checkpoint of the store and optimizer.
    pub fn with_checkpointer(mut self, ck: rapid_autograd::Checkpointer) -> Self {
        self.checkpointer = Some(ck);
        self
    }

    /// Fast-forwards the step counters past `epochs_done` completed
    /// epochs restored from a checkpoint, so epoch numbering, boundary
    /// detection, and the final [`FitReport`] line up with an
    /// uninterrupted run.
    pub fn resume_from(&mut self, epochs_done: usize) {
        self.batches = epochs_done * self.batches_per_epoch;
        self.start_batches = self.batches;
        self.epoch_loss.skip_to_epoch(epochs_done);
    }

    /// The 0-based epoch the *next* [`TrainStep::step`] belongs to.
    pub fn epoch(&self) -> usize {
        self.batches / self.batches_per_epoch
    }

    /// Optimizer steps taken so far.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Starts the per-batch latency clock. Call at the top of the batch
    /// body, before the forward pass.
    pub fn begin_batch(&mut self) {
        self.batch_start = Some(rapid_obs::clock::now());
    }

    /// Backward + update for one recorded batch whose summed scalar
    /// loss is `total`: validates the first batch graph (debug builds),
    /// fail-fasts on non-finite loss/gradients, publishes the epoch
    /// loss, clips, steps the optimizer, and records diagnostics on
    /// epoch boundaries.
    pub fn step(
        &mut self,
        tape: &mut rapid_autograd::Tape,
        total: rapid_autograd::Var,
        store: &mut rapid_autograd::ParamStore,
        optimizer: &mut dyn rapid_autograd::optim::Optimizer,
    ) {
        let reg = rapid_obs::global();
        let epoch = self.epoch();
        if cfg!(debug_assertions) && self.batches == 0 {
            // Validate the first recorded batch graph (shape
            // consistency, no dangling parents) before any gradient
            // flows; later batches replay the same graph structure.
            let check_start = rapid_obs::clock::now();
            if let Err(errors) = rapid_check::check_tape(tape) {
                panic!(
                    "{}: fit recorded an invalid graph: {}",
                    self.model, errors[0]
                );
            }
            reg.observe(
                "fit.graph_check_ms",
                check_start.elapsed().as_secs_f64() * 1e3,
            );
        }
        let mut loss = tape.value(total).get(0, 0);
        if let Some(nan) = rapid_faults::inject_nan("train.loss") {
            loss = nan;
        }
        if !loss.is_finite() {
            panic!(
                "{}: non-finite loss ({loss}) at epoch {epoch} (batch {}); aborting \
                 before the update corrupts the weights",
                self.model, self.batches
            );
        }
        self.epoch_loss.push(loss);
        tape.backward(total, store);
        if let Some(param) = rapid_autograd::diag::find_nonfinite_grad(store) {
            panic!(
                "{}: non-finite gradient in parameter `{param}` at epoch {epoch} \
                 (batch {}); aborting before the update corrupts the weights",
                self.model, self.batches
            );
        }
        if let Some(max_norm) = self.clip {
            store.clip_grad_norm(max_norm);
        }
        // The last batch of each epoch carries the diagnostics sample:
        // one row per parameter per epoch keeps traces readable and the
        // overhead off every other batch. `%` rather than
        // `is_multiple_of`: the workspace MSRV (1.75) predates its
        // stabilisation.
        #[allow(clippy::manual_is_multiple_of)]
        let boundary = (self.batches + 1) % self.batches_per_epoch == 0;
        if boundary && self.diag.enabled() {
            self.diag.record_pre_step(store, epoch);
        }
        optimizer.step_and_zero(store);
        if boundary {
            self.diag.record_post_step(store);
        }
        self.batches += 1;
        if let Some(start) = self.batch_start.take() {
            reg.observe(&self.batch_metric, start.elapsed().as_secs_f64() * 1e3);
        }
        if boundary {
            let epochs_done = (self.batches / self.batches_per_epoch) as u64;
            if let Some(ck) = &self.checkpointer {
                ck.on_epoch_end(epochs_done, self.batches as u64, store, &*optimizer);
            }
            // The injected crash fires AFTER the checkpoint write, so a
            // `crash-at-epoch:N` run dies holding epoch N's checkpoint
            // and its resume (starting past N) never re-fires.
            rapid_faults::epoch_boundary("train.epoch", epochs_done.saturating_sub(1));
        }
    }

    /// Closes the `fit` span, emits the run summary event, and returns
    /// the [`FitReport`] (counting only this run's steps, not those a
    /// resumed checkpoint already paid for).
    pub fn finish(mut self, epochs: usize) -> FitReport {
        let batches = self.batches - self.start_batches;
        let elapsed = match self.fit_span.take() {
            Some(span) => span.finish(),
            None => std::time::Duration::ZERO,
        };
        rapid_obs::event!(
            rapid_obs::Level::Info,
            "fit",
            "{}: {batches} batches / {epochs} epochs in {:.1} ms",
            self.model,
            elapsed.as_secs_f64() * 1e3
        );
        FitReport::new(batches)
    }
}

/// Accumulates per-batch losses and publishes the mean once per epoch as
/// `fit.<model>.epoch_loss` (shared by `fit_listwise` and the training
/// loops that cannot use it, e.g. adversarial ones).
pub struct EpochLoss {
    metric: String,
    batches_per_epoch: usize,
    sum: f64,
    n: usize,
    epoch: usize,
}

impl EpochLoss {
    /// Tracker for `model`, flushing every `batches_per_epoch` pushes.
    pub fn new(model: &str, batches_per_epoch: usize) -> Self {
        Self {
            metric: format!("fit.{model}.epoch_loss"),
            batches_per_epoch: batches_per_epoch.max(1),
            sum: 0.0,
            n: 0,
            epoch: 0,
        }
    }

    /// Jumps the epoch numbering past checkpoint-restored epochs so a
    /// resumed run's loss events continue the original numbering.
    pub fn skip_to_epoch(&mut self, epoch: usize) {
        self.epoch = epoch;
        self.sum = 0.0;
        self.n = 0;
    }

    /// Records one batch loss; emits the epoch mean on epoch boundaries.
    pub fn push(&mut self, batch_loss: f32) {
        self.sum += f64::from(batch_loss);
        self.n += 1;
        if self.n == self.batches_per_epoch {
            let mean = self.sum / self.n as f64;
            rapid_obs::global().observe(&self.metric, mean);
            rapid_obs::event!(
                rapid_obs::Level::Debug,
                "fit",
                "{} epoch {}: mean loss {mean:.5}",
                self.metric,
                self.epoch
            );
            self.epoch += 1;
            self.sum = 0.0;
            self.n = 0;
        }
    }
}

/// Scores one list with a forward function and returns the permutation
/// by descending score (stable tie-break by original position).
pub fn perm_by_scores(scores: &[f32]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    order
}

/// Grid-tunes a scalar hyper-parameter by maximising an objective over
/// the training samples (used by the heuristic diversifiers, mirroring
/// the paper's "we also fine-tune all baselines"). Returns the best
/// grid value; ties break toward the earliest.
pub fn tune_parameter(grid: &[f32], mut objective: impl FnMut(f32) -> f32) -> f32 {
    assert!(!grid.is_empty(), "tune_parameter: empty grid");
    let mut best = grid[0];
    let mut best_score = f32::NEG_INFINITY;
    for &g in grid {
        let s = objective(g);
        if s > best_score {
            best_score = s;
            best = g;
        }
    }
    best
}

/// Offline utility of a permutation against item-level click labels:
/// `click@k` under the standard offline re-ranking protocol (labels
/// attach to items and move with them). Shared by the heuristic tuners.
pub fn offline_clicks_at_k(perm: &[usize], clicks: &[bool], k: usize) -> f32 {
    perm.iter().take(k).filter(|&&i| clicks[i]).count() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{RerankInput, TrainSample};
    use rand::SeedableRng;
    use rapid_data::{generate, DataConfig, Dataset, Flavor};

    fn tiny() -> Dataset {
        let mut c = DataConfig::new(Flavor::Taobao);
        c.num_users = 10;
        c.num_items = 60;
        c.ranker_train_interactions = 100;
        c.rerank_train_requests = 4;
        c.test_requests = 2;
        generate(&c)
    }

    #[test]
    fn feature_matrix_shape_and_content() {
        let ds = tiny();
        let l = ds.test[0].candidates.len();
        let input = RerankInput {
            user: 1,
            items: ds.test[0].candidates.clone(),
            init_scores: (0..l).map(|i| i as f32).collect(),
        };
        let m = list_feature_matrix(&ds, &input);
        assert_eq!(m.shape(), (l, item_feature_dim(&ds)));
        // Last column is the init score.
        for i in 0..l {
            assert_eq!(m.get(i, m.cols() - 1), i as f32);
        }
    }

    #[test]
    fn batching_covers_all_samples_each_epoch() {
        let ds = tiny();
        let samples: Vec<TrainSample> = ds
            .rerank_train
            .iter()
            .map(|r| TrainSample {
                input: RerankInput {
                    user: r.user,
                    items: r.candidates.clone(),
                    init_scores: vec![0.0; r.candidates.len()],
                },
                clicks: vec![false; r.candidates.len()],
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = 0usize;
        for_each_batch(&samples, 3, 2, &mut rng, |batch| seen += batch.len());
        assert_eq!(seen, samples.len() * 3);
    }

    #[test]
    fn tuner_finds_the_argmax() {
        let best = tune_parameter(&[0.0, 0.25, 0.5, 0.75, 1.0], |x| -(x - 0.5).abs());
        assert_eq!(best, 0.5);
    }

    #[test]
    fn offline_clicks_move_with_items() {
        let clicks = [false, true, false];
        // Putting position-1's item first captures its click at k=1.
        assert_eq!(offline_clicks_at_k(&[1, 0, 2], &clicks, 1), 1.0);
        assert_eq!(offline_clicks_at_k(&[0, 2, 1], &clicks, 2), 0.0);
    }
}
