//! SRGA — Scope-aware Re-ranking with Gated Attention (Qian et al.,
//! WSDM 2022). Two attention scopes over the list — a *unidirectional*
//! (causal) scope modeling top-down browsing and a *local* scope over
//! neighbouring items — combined with a learned per-position gate.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapid_autograd::{ParamStore, Tape, Var};
use rapid_data::Dataset;
use rapid_nn::{Activation, Linear, Mlp};
use rapid_tensor::Matrix;

use crate::common::{fit_listwise_opts, item_feature_dim, perm_by_scores, ListLoss};
use crate::types::{FitReport, PreparedList, ReRanker};

/// SRGA hyper-parameters.
#[derive(Debug, Clone)]
pub struct SrgaConfig {
    /// Model width.
    pub hidden: usize,
    /// Local scope radius (`|i − j| <= radius`).
    pub local_radius: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Lists per optimizer step.
    pub batch: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for SrgaConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            local_radius: 1,
            epochs: 4,
            lr: 3e-3,
            batch: 16,
            seed: 0,
        }
    }
}

/// A trained SRGA re-ranker.
pub struct Srga {
    config: SrgaConfig,
    store: ParamStore,
    proj: Linear,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    gate: Linear,
    head: Mlp,
}

impl Srga {
    /// Creates an untrained SRGA for the dataset's feature shape.
    pub fn new(ds: &Dataset, config: SrgaConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let d = item_feature_dim(ds);
        let h = config.hidden;
        let mut store = ParamStore::new();
        Self {
            proj: Linear::new(&mut store, "srga.proj", d, h, &mut rng),
            wq: Linear::new(&mut store, "srga.wq", h, h, &mut rng),
            wk: Linear::new(&mut store, "srga.wk", h, h, &mut rng),
            wv: Linear::new(&mut store, "srga.wv", h, h, &mut rng),
            gate: Linear::new(&mut store, "srga.gate", 2 * h, h, &mut rng),
            head: Mlp::new(
                &mut store,
                "srga.head",
                &[h, h, 1],
                Activation::Relu,
                &mut rng,
            ),
            config,
            store,
        }
    }

    /// Additive attention mask: 0 where allowed, −1e4 where blocked.
    fn mask(l: usize, allow: impl Fn(usize, usize) -> bool) -> Matrix {
        let mut m = Matrix::zeros(l, l);
        for i in 0..l {
            for j in 0..l {
                if !allow(i, j) {
                    m.set(i, j, -1e4);
                }
            }
        }
        m
    }

    fn forward(
        layers: &SrgaLayers,
        radius: usize,
        tape: &mut Tape,
        store: &ParamStore,
        prep: &PreparedList,
    ) -> Var {
        let l = prep.len();
        let feats = tape.constant(prep.features.clone());
        let x = layers.proj.forward(tape, store, feats);
        let q = layers.wq.forward(tape, store, x);
        let k = layers.wk.forward(tape, store, x);
        let v = layers.wv.forward(tape, store, x);
        let kt = tape.transpose(k);
        let raw = tape.matmul(q, kt);
        let h_dim = tape.value(x).cols();
        let scaled = tape.scale(raw, 1.0 / (h_dim as f32).sqrt());

        // Unidirectional scope: positions only attend to items the user
        // has already passed (j <= i).
        let causal_mask = tape.constant(Self::mask(l, |i, j| j <= i));
        let causal_scores = tape.add(scaled, causal_mask);
        let causal_attn = tape.softmax_rows(causal_scores);
        let causal_out = tape.matmul(causal_attn, v);

        // Local scope: neighbouring items within the radius.
        let local_mask = tape.constant(Self::mask(l, |i, j| i.abs_diff(j) <= radius));
        let local_scores = tape.add(scaled, local_mask);
        let local_attn = tape.softmax_rows(local_scores);
        let local_out = tape.matmul(local_attn, v);

        // Learned gate mixes the two scopes per position and channel.
        let both = tape.concat_cols(&[causal_out, local_out]);
        let gate_logits = layers.gate.forward(tape, store, both);
        let g = tape.sigmoid(gate_logits);
        let ones = tape.constant(Matrix::ones(l, h_dim));
        let inv_g = tape.sub(ones, g);
        let a = tape.mul(g, causal_out);
        let b = tape.mul(inv_g, local_out);
        let mixed = tape.add(a, b);

        layers.head.forward(tape, store, mixed)
    }

    fn scores(&self, prep: &PreparedList) -> Vec<f32> {
        let mut tape = Tape::new();
        let logits = Self::forward(
            &self.layers(),
            self.config.local_radius,
            &mut tape,
            &self.store,
            prep,
        );
        tape.value(logits).as_slice().to_vec()
    }

    fn layers(&self) -> SrgaLayers {
        SrgaLayers {
            proj: self.proj.clone(),
            wq: self.wq.clone(),
            wk: self.wk.clone(),
            wv: self.wv.clone(),
            gate: self.gate.clone(),
            head: self.head.clone(),
        }
    }

    /// The shared training body behind `fit_prepared` (no checkpointing)
    /// and `fit_resumable` (crash-safe periodic checkpoints + resume).
    fn fit_impl(
        &mut self,
        lists: &[PreparedList],
        ckpt: Option<&rapid_autograd::CheckpointConfig>,
    ) -> FitReport {
        let layers = self.layers();
        let radius = self.config.local_radius;
        fit_listwise_opts(
            "SRGA",
            &mut self.store,
            lists,
            self.config.epochs,
            self.config.batch,
            self.config.lr,
            self.config.seed,
            ListLoss::Bce,
            Some(5.0),
            ckpt,
            |tape, store, prep| Self::forward(&layers, radius, tape, store, prep),
        )
    }
}

/// The cloneable layer handles of SRGA (ids into the param store).
struct SrgaLayers {
    proj: Linear,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    gate: Linear,
    head: Mlp,
}

impl ReRanker for Srga {
    fn name(&self) -> &'static str {
        "SRGA"
    }

    fn fit_prepared(&mut self, _ds: &Dataset, lists: &[PreparedList]) -> FitReport {
        self.fit_impl(lists, None)
    }

    fn fit_resumable(
        &mut self,
        _ds: &Dataset,
        lists: &[PreparedList],
        ckpt: &rapid_autograd::CheckpointConfig,
    ) -> FitReport {
        self.fit_impl(lists, Some(ckpt))
    }

    fn rerank_prepared(&self, _ds: &Dataset, prep: &PreparedList) -> Vec<usize> {
        perm_by_scores(&self.scores(prep))
    }

    fn record_graph(&self, _ds: &Dataset, prep: &PreparedList, tape: &mut Tape) -> Option<Var> {
        Some(Self::forward(
            &self.layers(),
            self.config.local_radius,
            tape,
            &self.store,
            prep,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{click_samples, tiny_dataset, top_click_rate};
    use crate::types::is_permutation;

    #[test]
    fn learns_to_put_attractive_items_first() {
        let ds = tiny_dataset(14);
        let samples = click_samples(&ds, 450, 10);
        let mut model = Srga::new(
            &ds,
            SrgaConfig {
                epochs: 15,
                ..SrgaConfig::default()
            },
        );
        model.fit(&ds, &samples);

        let before = top_click_rate(&ds, &samples[..150], |inp| (0..inp.len()).collect());
        let after = top_click_rate(&ds, &samples[..150], |inp| model.rerank(&ds, inp));
        assert!(
            after > before * 1.02,
            "SRGA should beat the initial order: {after} vs {before}"
        );
    }

    #[test]
    fn first_position_sees_only_itself_in_causal_scope() {
        // With the causal mask, row 0 can attend only to itself, so its
        // causal attention weight on itself is 1. We verify indirectly:
        // the mask matrix blocks everything above the diagonal.
        let m = Srga::mask(4, |i, j| j <= i);
        for i in 0..4 {
            for j in 0..4 {
                if j > i {
                    assert_eq!(m.get(i, j), -1e4);
                } else {
                    assert_eq!(m.get(i, j), 0.0);
                }
            }
        }
    }

    #[test]
    fn rerank_is_a_permutation() {
        let ds = tiny_dataset(7);
        let samples = click_samples(&ds, 6, 2);
        let mut model = Srga::new(
            &ds,
            SrgaConfig {
                epochs: 1,
                ..SrgaConfig::default()
            },
        );
        model.fit(&ds, &samples);
        let perm = model.rerank(&ds, &samples[0].input);
        assert!(is_permutation(&perm, samples[0].input.len()));
    }
}
