//! The ten baseline re-rankers the paper compares RAPID against
//! (§IV-B3), all implemented from scratch on the workspace substrates.
//!
//! Relevance-oriented neural re-rankers:
//! * [`Dlcm`] — GRU list encoder, scores from each position's state plus
//!   the final list state (Ai et al., SIGIR 2018).
//! * [`Prm`] — transformer encoder with learned position embeddings
//!   (Pei et al., RecSys 2019).
//! * [`SetRank`] — stacked induced set attention, permutation-invariant
//!   (Pang et al., SIGIR 2020).
//! * [`Srga`] — scope-aware gated attention: causal (unidirectional)
//!   attention gated against a local-window attention (Qian et al.,
//!   WSDM 2022).
//!
//! Diversity-aware re-rankers:
//! * [`MmrReranker`] — maximal marginal relevance.
//! * [`DppReranker`] — DPP greedy MAP over a quality/similarity kernel.
//! * [`Desa`] — self-attentive joint relevance/diversity scoring with a
//!   pairwise loss (Qin et al., CIKM 2020).
//! * [`SsdReranker`] — sliding spectrum decomposition.
//!
//! Personalized diversity re-rankers:
//! * [`AdpMmr`] — MMR whose tradeoff comes from the user's history
//!   entropy (Di Noia et al., RecSys 2014).
//! * [`PdGan`] — personalized-DPP baseline in the spirit of PD-GAN (Wu
//!   et al., IJCAI 2019): a learned pointwise quality model inside a
//!   DPP kernel whose diversity emphasis is personalized by the user's
//!   history; the adversarial training of the original is replaced by
//!   maximum-likelihood quality fitting (documented substitution — the
//!   baseline's *role* in the paper is a ranking-stage personalized
//!   diversifier with limited expressive power, which this preserves).
//!
//! Plus [`Identity`], which returns the initial ranking unchanged (the
//! `Init` row of every table).
//!
//! All models implement [`ReRanker`]; neural ones train on DCM click
//! feedback over initial lists, heuristic ones grid-tune their tradeoff
//! parameter on the same feedback.

mod common;
mod desa;
mod dlcm;
mod dpp;
mod mmr;
mod prm;
mod setrank;
mod srga;
mod ssd;
#[cfg(test)]
pub(crate) mod test_support;
mod types;

pub use common::{
    fit_listwise, fit_listwise_opts, for_each_batch, item_feature_dim, item_features,
    list_feature_matrix, resume_into, tune_parameter, EpochLoss, ListLoss, TrainStep,
};
pub use desa::{Desa, DesaConfig};
pub use dlcm::{Dlcm, DlcmConfig};
pub use dpp::{DppReranker, PdGan, PdGanConfig};
pub use mmr::{AdpMmr, MmrReranker};
pub use prm::{Prm, PrmConfig};
pub use setrank::{SetRank, SetRankConfig};
pub use srga::{Srga, SrgaConfig};
pub use ssd::SsdReranker;
pub use types::{
    is_permutation, FeatureCache, FitReport, Identity, PreparedList, ReRanker, RerankInput,
    TrainSample,
};
