//! SetRank (Pang et al., SIGIR 2020): a permutation-invariant ranker
//! built from stacked induced multi-head self-attention blocks — no
//! position embeddings, so the score of an item depends only on the
//! *set* of candidates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapid_autograd::{ParamStore, Tape, Var};
use rapid_data::Dataset;
use rapid_nn::{Activation, InducedSetAttention, Linear, Mlp};

use crate::common::{fit_listwise_opts, item_feature_dim, perm_by_scores, ListLoss};
use crate::types::{FitReport, PreparedList, ReRanker};

/// SetRank hyper-parameters.
#[derive(Debug, Clone)]
pub struct SetRankConfig {
    /// Model width.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Number of induced-attention blocks.
    pub blocks: usize,
    /// Inducing points per block.
    pub inducing: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Lists per optimizer step.
    pub batch: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for SetRankConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            heads: 2,
            blocks: 2,
            inducing: 4,
            epochs: 4,
            lr: 3e-3,
            batch: 16,
            seed: 0,
        }
    }
}

/// A trained SetRank re-ranker.
pub struct SetRank {
    config: SetRankConfig,
    store: ParamStore,
    input_proj: Linear,
    blocks: Vec<InducedSetAttention>,
    head: Mlp,
}

impl SetRank {
    /// Creates an untrained SetRank for the dataset's feature shape.
    pub fn new(ds: &Dataset, config: SetRankConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let d = item_feature_dim(ds);
        let mut store = ParamStore::new();
        let input_proj = Linear::new(&mut store, "setrank.proj", d, config.hidden, &mut rng);
        let blocks = (0..config.blocks)
            .map(|b| {
                InducedSetAttention::new(
                    &mut store,
                    &format!("setrank.isab{b}"),
                    config.hidden,
                    config.heads,
                    config.inducing,
                    &mut rng,
                )
            })
            .collect();
        let head = Mlp::new(
            &mut store,
            "setrank.head",
            &[config.hidden, config.hidden, 1],
            Activation::Relu,
            &mut rng,
        );
        Self {
            config,
            store,
            input_proj,
            blocks,
            head,
        }
    }

    fn forward(
        input_proj: &Linear,
        blocks: &[InducedSetAttention],
        head: &Mlp,
        tape: &mut Tape,
        store: &ParamStore,
        prep: &PreparedList,
    ) -> Var {
        let feats = tape.constant(prep.features.clone());
        let mut h = input_proj.forward(tape, store, feats);
        for block in blocks {
            h = block.forward(tape, store, h);
        }
        head.forward(tape, store, h)
    }

    fn scores(&self, prep: &PreparedList) -> Vec<f32> {
        let mut tape = Tape::new();
        let logits = Self::forward(
            &self.input_proj,
            &self.blocks,
            &self.head,
            &mut tape,
            &self.store,
            prep,
        );
        tape.value(logits).as_slice().to_vec()
    }

    /// The shared training body behind `fit_prepared` (no checkpointing)
    /// and `fit_resumable` (crash-safe periodic checkpoints + resume).
    fn fit_impl(
        &mut self,
        lists: &[PreparedList],
        ckpt: Option<&rapid_autograd::CheckpointConfig>,
    ) -> FitReport {
        let input_proj = self.input_proj.clone();
        let blocks = self.blocks.clone();
        let head = self.head.clone();
        fit_listwise_opts(
            "SetRank",
            &mut self.store,
            lists,
            self.config.epochs,
            self.config.batch,
            self.config.lr,
            self.config.seed,
            ListLoss::Bce,
            Some(5.0),
            ckpt,
            |tape, store, prep| Self::forward(&input_proj, &blocks, &head, tape, store, prep),
        )
    }
}

impl ReRanker for SetRank {
    fn name(&self) -> &'static str {
        "SetRank"
    }

    fn fit_prepared(&mut self, _ds: &Dataset, lists: &[PreparedList]) -> FitReport {
        self.fit_impl(lists, None)
    }

    fn fit_resumable(
        &mut self,
        _ds: &Dataset,
        lists: &[PreparedList],
        ckpt: &rapid_autograd::CheckpointConfig,
    ) -> FitReport {
        self.fit_impl(lists, Some(ckpt))
    }

    fn rerank_prepared(&self, _ds: &Dataset, prep: &PreparedList) -> Vec<usize> {
        perm_by_scores(&self.scores(prep))
    }

    fn record_graph(&self, _ds: &Dataset, prep: &PreparedList, tape: &mut Tape) -> Option<Var> {
        Some(Self::forward(
            &self.input_proj,
            &self.blocks,
            &self.head,
            tape,
            &self.store,
            prep,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{click_samples, tiny_dataset, top_click_rate};
    use crate::types::is_permutation;

    #[test]
    fn learns_to_put_attractive_items_first() {
        let ds = tiny_dataset(13);
        let samples = click_samples(&ds, 450, 9);
        let mut model = SetRank::new(
            &ds,
            SetRankConfig {
                epochs: 15,
                ..SetRankConfig::default()
            },
        );
        model.fit(&ds, &samples);

        let before = top_click_rate(&ds, &samples[..150], |inp| (0..inp.len()).collect());
        let after = top_click_rate(&ds, &samples[..150], |inp| model.rerank(&ds, inp));
        assert!(
            after > before * 1.02,
            "SetRank should beat the initial order: {after} vs {before}"
        );
    }

    #[test]
    fn scores_are_permutation_equivariant() {
        // Scoring a shuffled list must shuffle the scores identically —
        // SetRank's defining property (it has no position features).
        let ds = tiny_dataset(5);
        let samples = click_samples(&ds, 4, 3);
        let model = SetRank::new(&ds, SetRankConfig::default());
        let input = &samples[0].input;
        let base = model.scores(&PreparedList::from_input(&ds, input.clone()));

        let perm: Vec<usize> = (0..input.len()).rev().collect();
        let shuffled = crate::types::RerankInput {
            user: input.user,
            items: perm.iter().map(|&i| input.items[i]).collect(),
            init_scores: perm.iter().map(|&i| input.init_scores[i]).collect(),
        };
        let shuffled_scores = model.scores(&PreparedList::from_input(&ds, shuffled));
        for (out_pos, &src) in perm.iter().enumerate() {
            assert!(
                (shuffled_scores[out_pos] - base[src]).abs() < 1e-4,
                "position {out_pos}: {} vs {}",
                shuffled_scores[out_pos],
                base[src]
            );
        }
    }

    #[test]
    fn rerank_is_a_permutation() {
        let ds = tiny_dataset(6);
        let samples = click_samples(&ds, 6, 2);
        let mut model = SetRank::new(
            &ds,
            SetRankConfig {
                epochs: 1,
                ..SetRankConfig::default()
            },
        );
        model.fit(&ds, &samples);
        let perm = model.rerank(&ds, &samples[0].input);
        assert!(is_permutation(&perm, samples[0].input.len()));
    }
}
