//! PRM — Personalized Re-ranking Model (Pei et al., RecSys 2019): a
//! transformer encoder over the initial list with learned position
//! embeddings.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapid_autograd::{ParamId, ParamStore, Tape, Var};
use rapid_data::Dataset;
use rapid_nn::{Activation, Linear, Mlp, TransformerEncoderLayer};
use rapid_tensor::Matrix;

use crate::common::{fit_listwise_opts, item_feature_dim, perm_by_scores, ListLoss};
use crate::types::{FitReport, PreparedList, ReRanker};

/// PRM hyper-parameters.
#[derive(Debug, Clone)]
pub struct PrmConfig {
    /// Model width (must be divisible by `heads`).
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder blocks.
    pub blocks: usize,
    /// Maximum list length (sizes the position embedding).
    pub max_len: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Lists per optimizer step.
    pub batch: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for PrmConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            heads: 2,
            blocks: 1,
            max_len: 30,
            epochs: 4,
            lr: 3e-3,
            batch: 16,
            seed: 0,
        }
    }
}

/// A trained PRM re-ranker.
pub struct Prm {
    config: PrmConfig,
    store: ParamStore,
    input_proj: Linear,
    pos_embed: ParamId,
    encoders: Vec<TransformerEncoderLayer>,
    head: Mlp,
}

impl Prm {
    /// Creates an untrained PRM for the dataset's feature shape.
    pub fn new(ds: &Dataset, config: PrmConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let d = item_feature_dim(ds);
        let mut store = ParamStore::new();
        let input_proj = Linear::new(&mut store, "prm.proj", d, config.hidden, &mut rng);
        let pos_embed = store.add(
            "prm.pos",
            Matrix::rand_uniform(config.max_len, config.hidden, -0.05, 0.05, &mut rng),
        );
        let encoders = (0..config.blocks)
            .map(|b| {
                TransformerEncoderLayer::new(
                    &mut store,
                    &format!("prm.enc{b}"),
                    config.hidden,
                    config.heads,
                    2 * config.hidden,
                    &mut rng,
                )
            })
            .collect();
        let head = Mlp::new(
            &mut store,
            "prm.head",
            &[config.hidden, config.hidden, 1],
            Activation::Relu,
            &mut rng,
        );
        Self {
            config,
            store,
            input_proj,
            pos_embed,
            encoders,
            head,
        }
    }

    fn forward(
        input_proj: &Linear,
        pos_embed: ParamId,
        encoders: &[TransformerEncoderLayer],
        head: &Mlp,
        tape: &mut Tape,
        store: &ParamStore,
        prep: &PreparedList,
    ) -> Var {
        let l = prep.len();
        let feats = tape.constant(prep.features.clone());
        let mut h = input_proj.forward(tape, store, feats);
        let pos_all = tape.param(store, pos_embed);
        let pos = tape.slice_rows(pos_all, 0, l);
        h = tape.add(h, pos);
        for enc in encoders {
            h = enc.forward(tape, store, h);
        }
        head.forward(tape, store, h)
    }

    fn scores(&self, prep: &PreparedList) -> Vec<f32> {
        let mut tape = Tape::new();
        let logits = Self::forward(
            &self.input_proj,
            self.pos_embed,
            &self.encoders,
            &self.head,
            &mut tape,
            &self.store,
            prep,
        );
        tape.value(logits).as_slice().to_vec()
    }

    /// The shared training body behind `fit_prepared` (no checkpointing)
    /// and `fit_resumable` (crash-safe periodic checkpoints + resume).
    fn fit_impl(
        &mut self,
        lists: &[PreparedList],
        ckpt: Option<&rapid_autograd::CheckpointConfig>,
    ) -> FitReport {
        let input_proj = self.input_proj.clone();
        let pos_embed = self.pos_embed;
        let encoders = self.encoders.clone();
        let head = self.head.clone();
        fit_listwise_opts(
            "PRM",
            &mut self.store,
            lists,
            self.config.epochs,
            self.config.batch,
            self.config.lr,
            self.config.seed,
            ListLoss::Bce,
            Some(5.0),
            ckpt,
            |tape, store, prep| {
                Self::forward(&input_proj, pos_embed, &encoders, &head, tape, store, prep)
            },
        )
    }
}

impl ReRanker for Prm {
    fn name(&self) -> &'static str {
        "PRM"
    }

    fn fit_prepared(&mut self, _ds: &Dataset, lists: &[PreparedList]) -> FitReport {
        self.fit_impl(lists, None)
    }

    fn fit_resumable(
        &mut self,
        _ds: &Dataset,
        lists: &[PreparedList],
        ckpt: &rapid_autograd::CheckpointConfig,
    ) -> FitReport {
        self.fit_impl(lists, Some(ckpt))
    }

    fn rerank_prepared(&self, _ds: &Dataset, prep: &PreparedList) -> Vec<usize> {
        perm_by_scores(&self.scores(prep))
    }

    fn record_graph(&self, _ds: &Dataset, prep: &PreparedList, tape: &mut Tape) -> Option<Var> {
        Some(Self::forward(
            &self.input_proj,
            self.pos_embed,
            &self.encoders,
            &self.head,
            tape,
            &self.store,
            prep,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{click_samples, tiny_dataset, top_click_rate};
    use crate::types::is_permutation;

    #[test]
    fn learns_to_put_attractive_items_first() {
        let ds = tiny_dataset(12);
        let samples = click_samples(&ds, 450, 8);
        let mut model = Prm::new(
            &ds,
            PrmConfig {
                epochs: 15,
                ..PrmConfig::default()
            },
        );
        model.fit(&ds, &samples);

        let before = top_click_rate(&ds, &samples[..150], |inp| (0..inp.len()).collect());
        let after = top_click_rate(&ds, &samples[..150], |inp| model.rerank(&ds, inp));
        assert!(
            after > before * 1.02,
            "PRM should beat the initial order: {after} vs {before}"
        );
    }

    #[test]
    fn rerank_is_a_permutation() {
        let ds = tiny_dataset(4);
        let samples = click_samples(&ds, 8, 2);
        let mut model = Prm::new(
            &ds,
            PrmConfig {
                epochs: 1,
                ..PrmConfig::default()
            },
        );
        model.fit(&ds, &samples);
        let perm = model.rerank(&ds, &samples[0].input);
        assert!(is_permutation(&perm, samples[0].input.len()));
    }
}
