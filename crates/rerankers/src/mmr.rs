//! MMR and its personalized variant adpMMR.

use rapid_data::Dataset;
use rapid_diversity::{history_entropy_propensity, mmr_select};

use crate::common::{offline_clicks_at_k, tune_parameter};
use crate::types::{FitReport, PreparedList, ReRanker};

/// Maximal Marginal Relevance re-ranker. The relevance term is the
/// initial ranker's squashed score; the similarity term is the coverage
/// cosine. The tradeoff `λ` is grid-tuned on training clicks.
#[derive(Debug, Clone)]
pub struct MmrReranker {
    lambda: f32,
}

impl Default for MmrReranker {
    fn default() -> Self {
        Self { lambda: 0.7 }
    }
}

impl MmrReranker {
    /// The current (possibly tuned) tradeoff.
    pub fn lambda(&self) -> f32 {
        self.lambda
    }
}

impl ReRanker for MmrReranker {
    fn name(&self) -> &'static str {
        "MMR"
    }

    fn fit_prepared(&mut self, _ds: &Dataset, lists: &[PreparedList]) -> FitReport {
        if lists.is_empty() {
            return FitReport::default();
        }
        let k = lists[0].len().min(10);
        self.lambda = tune_parameter(&[1.0, 0.9, 0.8, 0.7, 0.5, 0.3], |lambda| {
            lists
                .iter()
                .map(|prep| {
                    let perm = mmr_select(&prep.relevance, &prep.coverage_slices(), lambda);
                    offline_clicks_at_k(&perm, prep.labels(), k)
                })
                .sum()
        });
        FitReport::default()
    }

    fn rerank_prepared(&self, _ds: &Dataset, prep: &PreparedList) -> Vec<usize> {
        mmr_select(&prep.relevance, &prep.coverage_slices(), self.lambda)
    }
}

/// adpMMR (Di Noia et al., 2014): per-user MMR whose tradeoff comes from
/// the entropy of the user's behavior history — a diverse history lowers
/// `λ` (more diversification), a focused one raises it. The mapping
/// scale is grid-tuned on training clicks.
#[derive(Debug, Clone)]
pub struct AdpMmr {
    /// How strongly the propensity moves `λ` away from 1.
    strength: f32,
}

impl Default for AdpMmr {
    fn default() -> Self {
        Self { strength: 0.4 }
    }
}

impl AdpMmr {
    /// Per-user tradeoff: `λ_u = 1 − strength · propensity(history)`.
    fn user_lambda(&self, ds: &Dataset, user: usize) -> f32 {
        let hist_covs: Vec<&[f32]> = ds.users[user]
            .history
            .iter()
            .map(|&v| ds.items[v].coverage.as_slice())
            .collect();
        let propensity = history_entropy_propensity(&hist_covs);
        (1.0 - self.strength * propensity).clamp(0.0, 1.0)
    }
}

impl ReRanker for AdpMmr {
    fn name(&self) -> &'static str {
        "adpMMR"
    }

    fn fit_prepared(&mut self, ds: &Dataset, lists: &[PreparedList]) -> FitReport {
        if lists.is_empty() {
            return FitReport::default();
        }
        let k = lists[0].len().min(10);
        self.strength = tune_parameter(&[0.1, 0.2, 0.4, 0.6, 0.8], |strength| {
            let probe = AdpMmr { strength };
            lists
                .iter()
                .map(|prep| {
                    let perm = probe.rerank_prepared(ds, prep);
                    offline_clicks_at_k(&perm, prep.labels(), k)
                })
                .sum()
        });
        FitReport::default()
    }

    fn rerank_prepared(&self, ds: &Dataset, prep: &PreparedList) -> Vec<usize> {
        mmr_select(
            &prep.relevance,
            &prep.coverage_slices(),
            self.user_lambda(ds, prep.user()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{is_permutation, RerankInput, TrainSample};
    use rapid_data::{generate, DataConfig, Flavor};

    fn tiny() -> Dataset {
        let mut c = DataConfig::new(Flavor::MovieLens);
        c.num_users = 20;
        c.num_items = 100;
        c.ranker_train_interactions = 200;
        c.rerank_train_requests = 10;
        c.test_requests = 5;
        generate(&c)
    }

    fn input(ds: &Dataset, idx: usize) -> RerankInput {
        RerankInput {
            user: ds.test[idx].user,
            items: ds.test[idx].candidates.clone(),
            init_scores: (0..ds.test[idx].candidates.len())
                .map(|i| -(i as f32) * 0.2)
                .collect(),
        }
    }

    #[test]
    fn mmr_returns_permutations() {
        let ds = tiny();
        let model = MmrReranker::default();
        let inp = input(&ds, 0);
        assert!(is_permutation(&model.rerank(&ds, &inp), inp.len()));
    }

    #[test]
    fn mmr_tuning_keeps_top_clicks_on_top() {
        let ds = tiny();
        // Clicks exactly at the top of the initial list: after tuning,
        // MMR must not displace them out of the top 2.
        let samples: Vec<TrainSample> = (0..5)
            .map(|i| {
                let inp = input(&ds, i % ds.test.len());
                let mut clicks = vec![false; inp.len()];
                clicks[0] = true;
                clicks[1] = true;
                TrainSample { input: inp, clicks }
            })
            .collect();
        let mut model = MmrReranker::default();
        model.fit(&ds, &samples);
        assert!(model.lambda() >= 0.8, "lambda {}", model.lambda());
        for s in &samples {
            let perm = model.rerank(&ds, &s.input);
            assert!(perm[..2].contains(&0) && perm[..2].contains(&1));
        }
    }

    #[test]
    fn adp_mmr_lambda_anticorrelates_with_preference_entropy() {
        let ds = tiny();
        let model = AdpMmr::default();
        // Across the user population, diverse-preference users must get
        // systematically lower λ (more diversification). Per-user noise
        // exists (histories are finite samples), so test the correlation.
        let xs: Vec<f32> = ds.users.iter().map(|u| u.pref_entropy()).collect();
        let ys: Vec<f32> = ds
            .users
            .iter()
            .map(|u| model.user_lambda(&ds, u.id))
            .collect();
        let n = xs.len() as f32;
        let mx = xs.iter().sum::<f32>() / n;
        let my = ys.iter().sum::<f32>() / n;
        let cov: f32 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f32 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let vy: f32 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        let corr = cov / (vx * vy).sqrt().max(1e-9);
        assert!(corr < -0.2, "entropy-lambda correlation {corr}");
    }
}
