//! DLCM — Deep Listwise Context Model (Ai et al., SIGIR 2018).
//!
//! A GRU encodes the initial list top-down; each position's score comes
//! from its own hidden state combined with the final state (the "local
//! context" of the whole list).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapid_autograd::{ParamStore, Tape, Var};
use rapid_data::Dataset;
use rapid_nn::{Activation, Gru, Mlp};

use crate::common::{fit_listwise_opts, item_feature_dim, perm_by_scores, ListLoss};
use crate::types::{FitReport, PreparedList, ReRanker};

/// DLCM hyper-parameters.
#[derive(Debug, Clone)]
pub struct DlcmConfig {
    /// GRU hidden size.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Lists per optimizer step.
    pub batch: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for DlcmConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            epochs: 4,
            lr: 3e-3,
            batch: 16,
            seed: 0,
        }
    }
}

/// A trained DLCM re-ranker.
pub struct Dlcm {
    config: DlcmConfig,
    store: ParamStore,
    gru: Gru,
    head: Mlp,
}

impl Dlcm {
    /// Creates an untrained DLCM for the dataset's feature shape.
    pub fn new(ds: &Dataset, config: DlcmConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let d = item_feature_dim(ds);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "dlcm.gru", d, config.hidden, &mut rng);
        let head = Mlp::new(
            &mut store,
            "dlcm.head",
            &[2 * config.hidden, config.hidden, 1],
            Activation::Relu,
            &mut rng,
        );
        Self {
            config,
            store,
            gru,
            head,
        }
    }

    fn forward(
        gru: &Gru,
        head: &Mlp,
        tape: &mut Tape,
        store: &ParamStore,
        prep: &PreparedList,
    ) -> Var {
        let feats = tape.constant(prep.features.clone());
        let l = prep.len();
        let steps: Vec<Var> = (0..l).map(|i| tape.slice_rows(feats, i, i + 1)).collect();
        let states = gru.forward(tape, store, &steps);
        let last = *states.last().expect("non-empty list");
        let per_pos: Vec<Var> = states
            .iter()
            .map(|&s| tape.concat_cols(&[s, last]))
            .collect();
        let stacked = tape.concat_rows(&per_pos); // (L, 2h)
        head.forward(tape, store, stacked) // (L, 1)
    }

    fn scores(&self, prep: &PreparedList) -> Vec<f32> {
        let mut tape = Tape::new();
        let logits = Self::forward(&self.gru, &self.head, &mut tape, &self.store, prep);
        tape.value(logits).as_slice().to_vec()
    }

    /// The shared training body behind `fit_prepared` (no checkpointing)
    /// and `fit_resumable` (crash-safe periodic checkpoints + resume).
    fn fit_impl(
        &mut self,
        lists: &[PreparedList],
        ckpt: Option<&rapid_autograd::CheckpointConfig>,
    ) -> FitReport {
        let gru = self.gru.clone();
        let head = self.head.clone();
        fit_listwise_opts(
            "DLCM",
            &mut self.store,
            lists,
            self.config.epochs,
            self.config.batch,
            self.config.lr,
            self.config.seed,
            ListLoss::Bce,
            Some(5.0),
            ckpt,
            |tape, store, prep| Self::forward(&gru, &head, tape, store, prep),
        )
    }
}

impl ReRanker for Dlcm {
    fn name(&self) -> &'static str {
        "DLCM"
    }

    fn fit_prepared(&mut self, _ds: &Dataset, lists: &[PreparedList]) -> FitReport {
        self.fit_impl(lists, None)
    }

    fn fit_resumable(
        &mut self,
        _ds: &Dataset,
        lists: &[PreparedList],
        ckpt: &rapid_autograd::CheckpointConfig,
    ) -> FitReport {
        self.fit_impl(lists, Some(ckpt))
    }

    fn rerank_prepared(&self, _ds: &Dataset, prep: &PreparedList) -> Vec<usize> {
        perm_by_scores(&self.scores(prep))
    }

    fn record_graph(&self, _ds: &Dataset, prep: &PreparedList, tape: &mut Tape) -> Option<Var> {
        Some(Self::forward(
            &self.gru,
            &self.head,
            tape,
            &self.store,
            prep,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{click_samples, tiny_dataset, top_click_rate};
    use crate::types::is_permutation;

    #[test]
    fn learns_to_put_attractive_items_first() {
        let ds = tiny_dataset(11);
        let samples = click_samples(&ds, 450, 7);
        let mut model = Dlcm::new(
            &ds,
            DlcmConfig {
                epochs: 15,
                ..DlcmConfig::default()
            },
        );
        model.fit(&ds, &samples);

        let before = top_click_rate(&ds, &samples[..150], |inp| (0..inp.len()).collect());
        let after = top_click_rate(&ds, &samples[..150], |inp| model.rerank(&ds, inp));
        assert!(
            after > before * 1.02,
            "DLCM should beat the shuffled order: {after} vs {before}"
        );
    }

    #[test]
    fn rerank_is_a_permutation() {
        let ds = tiny_dataset(3);
        let samples = click_samples(&ds, 10, 1);
        let mut model = Dlcm::new(
            &ds,
            DlcmConfig {
                epochs: 1,
                ..DlcmConfig::default()
            },
        );
        model.fit(&ds, &samples);
        let perm = model.rerank(&ds, &samples[0].input);
        assert!(is_permutation(&perm, samples[0].input.len()));
    }
}
