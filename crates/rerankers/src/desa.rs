//! DESA (Qin et al., CIKM 2020): joint relevance/diversity scoring with
//! self-attention and a pairwise loss.
//!
//! Two channels per item: a *relevance* representation from a
//! transformer encoder over the item features, and a *diversity*
//! representation from self-attention over the items' marginal-coverage
//! novelty vectors (Eq. 5 of the RAPID paper — DESA computes novelty
//! from the list alone, with **no personalization**, which is exactly
//! the gap RAPID fills). The two are fused by an MLP and trained with
//! the pairwise logistic loss.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapid_autograd::{ParamStore, Tape, Var};
use rapid_data::Dataset;
use rapid_nn::{self_attention, Activation, Linear, Mlp, TransformerEncoderLayer};

use crate::common::{fit_listwise_opts, item_feature_dim, perm_by_scores, ListLoss};
use crate::types::{FitReport, PreparedList, ReRanker};

/// DESA hyper-parameters.
#[derive(Debug, Clone)]
pub struct DesaConfig {
    /// Model width.
    pub hidden: usize,
    /// Attention heads of the relevance encoder.
    pub heads: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Lists per optimizer step.
    pub batch: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for DesaConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            heads: 2,
            epochs: 4,
            lr: 3e-3,
            batch: 16,
            seed: 0,
        }
    }
}

/// A trained DESA re-ranker.
pub struct Desa {
    config: DesaConfig,
    store: ParamStore,
    rel_proj: Linear,
    rel_encoder: TransformerEncoderLayer,
    div_proj: Linear,
    head: Mlp,
}

impl Desa {
    /// Creates an untrained DESA for the dataset's feature shape.
    pub fn new(ds: &Dataset, config: DesaConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let d = item_feature_dim(ds);
        let m = ds.num_topics();
        let h = config.hidden;
        let mut store = ParamStore::new();
        Self {
            rel_proj: Linear::new(&mut store, "desa.rel_proj", d, h, &mut rng),
            rel_encoder: TransformerEncoderLayer::new(
                &mut store,
                "desa.rel_enc",
                h,
                config.heads,
                2 * h,
                &mut rng,
            ),
            div_proj: Linear::new(&mut store, "desa.div_proj", m, h, &mut rng),
            head: Mlp::new(
                &mut store,
                "desa.head",
                &[2 * h, h, 1],
                Activation::Relu,
                &mut rng,
            ),
            config,
            store,
        }
    }

    fn forward(
        layers: &DesaLayers,
        tape: &mut Tape,
        store: &ParamStore,
        prep: &PreparedList,
    ) -> Var {
        // Relevance channel.
        let feats = tape.constant(prep.features.clone());
        let rel = layers.rel_proj.forward(tape, store, feats);
        let rel = layers.rel_encoder.forward(tape, store, rel);

        // Diversity channel: projected novelty vectors mixed by
        // (unparameterized) self-attention.
        let novelty = tape.constant(prep.novelty.clone());
        let div = layers.div_proj.forward(tape, store, novelty);
        let div = self_attention(tape, div);

        let both = tape.concat_cols(&[rel, div]);
        layers.head.forward(tape, store, both)
    }

    fn scores(&self, prep: &PreparedList) -> Vec<f32> {
        let mut tape = Tape::new();
        let logits = Self::forward(&self.layers(), &mut tape, &self.store, prep);
        tape.value(logits).as_slice().to_vec()
    }

    fn layers(&self) -> DesaLayers {
        DesaLayers {
            rel_proj: self.rel_proj.clone(),
            rel_encoder: self.rel_encoder.clone(),
            div_proj: self.div_proj.clone(),
            head: self.head.clone(),
        }
    }

    /// The shared training body behind `fit_prepared` (no checkpointing)
    /// and `fit_resumable` (crash-safe periodic checkpoints + resume).
    fn fit_impl(
        &mut self,
        lists: &[PreparedList],
        ckpt: Option<&rapid_autograd::CheckpointConfig>,
    ) -> FitReport {
        let layers = self.layers();
        fit_listwise_opts(
            "DESA",
            &mut self.store,
            lists,
            self.config.epochs,
            self.config.batch,
            self.config.lr,
            self.config.seed,
            ListLoss::Pairwise,
            Some(5.0),
            ckpt,
            |tape, store, prep| Self::forward(&layers, tape, store, prep),
        )
    }
}

struct DesaLayers {
    rel_proj: Linear,
    rel_encoder: TransformerEncoderLayer,
    div_proj: Linear,
    head: Mlp,
}

impl ReRanker for Desa {
    fn name(&self) -> &'static str {
        "DESA"
    }

    fn fit_prepared(&mut self, _ds: &Dataset, lists: &[PreparedList]) -> FitReport {
        self.fit_impl(lists, None)
    }

    fn fit_resumable(
        &mut self,
        _ds: &Dataset,
        lists: &[PreparedList],
        ckpt: &rapid_autograd::CheckpointConfig,
    ) -> FitReport {
        self.fit_impl(lists, Some(ckpt))
    }

    fn rerank_prepared(&self, _ds: &Dataset, prep: &PreparedList) -> Vec<usize> {
        perm_by_scores(&self.scores(prep))
    }

    fn record_graph(&self, _ds: &Dataset, prep: &PreparedList, tape: &mut Tape) -> Option<Var> {
        Some(Self::forward(&self.layers(), tape, &self.store, prep))
    }

    fn loss_kind(&self) -> ListLoss {
        ListLoss::Pairwise
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{click_samples, tiny_dataset, top_click_rate};
    use crate::types::is_permutation;

    #[test]
    fn learns_to_put_attractive_items_first() {
        let ds = tiny_dataset(15);
        let samples = click_samples(&ds, 450, 11);
        let mut model = Desa::new(
            &ds,
            DesaConfig {
                epochs: 15,
                ..DesaConfig::default()
            },
        );
        model.fit(&ds, &samples);

        let before = top_click_rate(&ds, &samples[..150], |inp| (0..inp.len()).collect());
        let after = top_click_rate(&ds, &samples[..150], |inp| model.rerank(&ds, inp));
        assert!(
            after > before * 1.02,
            "DESA should beat the initial order: {after} vs {before}"
        );
    }

    #[test]
    fn novelty_matrix_has_topic_width() {
        let ds = tiny_dataset(8);
        let samples = click_samples(&ds, 2, 1);
        let prep = PreparedList::from_sample(&ds, &samples[0]);
        assert_eq!(
            prep.novelty.shape(),
            (samples[0].input.len(), ds.num_topics())
        );
        assert!(prep
            .novelty
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn rerank_is_a_permutation() {
        let ds = tiny_dataset(9);
        let samples = click_samples(&ds, 6, 2);
        let mut model = Desa::new(
            &ds,
            DesaConfig {
                epochs: 1,
                ..DesaConfig::default()
            },
        );
        model.fit(&ds, &samples);
        let perm = model.rerank(&ds, &samples[0].input);
        assert!(is_permutation(&perm, samples[0].input.len()));
    }
}
