//! DESA (Qin et al., CIKM 2020): joint relevance/diversity scoring with
//! self-attention and a pairwise loss.
//!
//! Two channels per item: a *relevance* representation from a
//! transformer encoder over the item features, and a *diversity*
//! representation from self-attention over the items' marginal-coverage
//! novelty vectors (Eq. 5 of the RAPID paper — DESA computes novelty
//! from the list alone, with **no personalization**, which is exactly
//! the gap RAPID fills). The two are fused by an MLP and trained with
//! the pairwise logistic loss.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapid_autograd::{ParamStore, Tape, Var};
use rapid_data::Dataset;
use rapid_diversity::marginal_diversity;
use rapid_nn::{self_attention, Activation, Linear, Mlp, TransformerEncoderLayer};
use rapid_tensor::Matrix;

use crate::common::{fit_listwise, item_feature_dim, list_feature_matrix, perm_by_scores, ListLoss};
use crate::types::{ReRanker, RerankInput, TrainSample};

/// DESA hyper-parameters.
#[derive(Debug, Clone)]
pub struct DesaConfig {
    /// Model width.
    pub hidden: usize,
    /// Attention heads of the relevance encoder.
    pub heads: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Lists per optimizer step.
    pub batch: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for DesaConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            heads: 2,
            epochs: 4,
            lr: 3e-3,
            batch: 16,
            seed: 0,
        }
    }
}

/// A trained DESA re-ranker.
pub struct Desa {
    config: DesaConfig,
    store: ParamStore,
    rel_proj: Linear,
    rel_encoder: TransformerEncoderLayer,
    div_proj: Linear,
    head: Mlp,
}

impl Desa {
    /// Creates an untrained DESA for the dataset's feature shape.
    pub fn new(ds: &Dataset, config: DesaConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let d = item_feature_dim(ds);
        let m = ds.num_topics();
        let h = config.hidden;
        let mut store = ParamStore::new();
        Self {
            rel_proj: Linear::new(&mut store, "desa.rel_proj", d, h, &mut rng),
            rel_encoder: TransformerEncoderLayer::new(
                &mut store,
                "desa.rel_enc",
                h,
                config.heads,
                2 * h,
                &mut rng,
            ),
            div_proj: Linear::new(&mut store, "desa.div_proj", m, h, &mut rng),
            head: Mlp::new(
                &mut store,
                "desa.head",
                &[2 * h, h, 1],
                Activation::Relu,
                &mut rng,
            ),
            config,
            store,
        }
    }

    /// `(L, m)` matrix of marginal-diversity (novelty) vectors.
    fn novelty_matrix(ds: &Dataset, input: &RerankInput) -> Matrix {
        let covs = input.coverages(ds);
        let m = ds.num_topics();
        let mut data = Vec::with_capacity(input.len() * m);
        for i in 0..input.len() {
            data.extend(marginal_diversity(&covs, i));
        }
        Matrix::from_vec(input.len(), m, data)
    }

    fn forward(
        layers: &DesaLayers,
        tape: &mut Tape,
        store: &ParamStore,
        ds: &Dataset,
        input: &RerankInput,
    ) -> Var {
        // Relevance channel.
        let feats = tape.constant(list_feature_matrix(ds, input));
        let rel = layers.rel_proj.forward(tape, store, feats);
        let rel = layers.rel_encoder.forward(tape, store, rel);

        // Diversity channel: projected novelty vectors mixed by
        // (unparameterized) self-attention.
        let novelty = tape.constant(Self::novelty_matrix(ds, input));
        let div = layers.div_proj.forward(tape, store, novelty);
        let div = self_attention(tape, div);

        let both = tape.concat_cols(&[rel, div]);
        layers.head.forward(tape, store, both)
    }

    fn scores(&self, ds: &Dataset, input: &RerankInput) -> Vec<f32> {
        let mut tape = Tape::new();
        let logits = Self::forward(&self.layers(), &mut tape, &self.store, ds, input);
        tape.value(logits).as_slice().to_vec()
    }

    fn layers(&self) -> DesaLayers {
        DesaLayers {
            rel_proj: self.rel_proj.clone(),
            rel_encoder: self.rel_encoder.clone(),
            div_proj: self.div_proj.clone(),
            head: self.head.clone(),
        }
    }
}

struct DesaLayers {
    rel_proj: Linear,
    rel_encoder: TransformerEncoderLayer,
    div_proj: Linear,
    head: Mlp,
}

impl ReRanker for Desa {
    fn name(&self) -> &'static str {
        "DESA"
    }

    fn fit(&mut self, ds: &Dataset, samples: &[TrainSample]) {
        let layers = self.layers();
        fit_listwise(
            &mut self.store,
            ds,
            samples,
            self.config.epochs,
            self.config.batch,
            self.config.lr,
            self.config.seed,
            ListLoss::Pairwise,
            |tape, store, ds, input| Self::forward(&layers, tape, store, ds, input),
        );
    }

    fn rerank(&self, ds: &Dataset, input: &RerankInput) -> Vec<usize> {
        perm_by_scores(&self.scores(ds, input))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{click_samples, tiny_dataset, top_click_rate};
    use crate::types::is_permutation;

    #[test]
    fn learns_to_put_attractive_items_first() {
        let ds = tiny_dataset(15);
        let samples = click_samples(&ds, 450, 11);
        let mut model = Desa::new(&ds, DesaConfig {
            epochs: 15,
            ..DesaConfig::default()
        });
        model.fit(&ds, &samples);

        let before = top_click_rate(&ds, &samples[..150], |inp| (0..inp.len()).collect());
        let after = top_click_rate(&ds, &samples[..150], |inp| model.rerank(&ds, inp));
        assert!(
            after > before * 1.02,
            "DESA should beat the initial order: {after} vs {before}"
        );
    }

    #[test]
    fn novelty_matrix_has_topic_width() {
        let ds = tiny_dataset(8);
        let samples = click_samples(&ds, 2, 1);
        let m = Desa::novelty_matrix(&ds, &samples[0].input);
        assert_eq!(m.shape(), (samples[0].input.len(), ds.num_topics()));
        assert!(m.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn rerank_is_a_permutation() {
        let ds = tiny_dataset(9);
        let samples = click_samples(&ds, 6, 2);
        let mut model = Desa::new(&ds, DesaConfig {
            epochs: 1,
            ..DesaConfig::default()
        });
        model.fit(&ds, &samples);
        let perm = model.rerank(&ds, &samples[0].input);
        assert!(is_permutation(&perm, samples[0].input.len()));
    }
}
