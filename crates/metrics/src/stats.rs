//! Summary statistics and Student-t significance tests.
//!
//! The paper marks improvements with `*` when a t-test gives
//! `p < 0.05`; we implement both the paired test (same requests, two
//! systems) and Welch's unequal-variance test, with exact p-values via
//! the regularised incomplete beta function.

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Sample standard deviation (n−1 denominator; 0 for n < 2).
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / (xs.len() - 1) as f32;
    var.sqrt()
}

/// Mean ± std summary of a metric across requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f32,
    /// Sample standard deviation.
    pub std: f32,
    /// Sample count.
    pub n: usize,
}

impl Summary {
    /// Summarises a sample.
    pub fn of(xs: &[f32]) -> Self {
        Self {
            mean: mean(xs),
            std: std_dev(xs),
            n: xs.len(),
        }
    }
}

/// Result of a t-test.
#[derive(Debug, Clone, Copy)]
pub struct TTestResult {
    /// The t statistic (positive when the first sample is larger).
    pub t: f64,
    /// Degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl TTestResult {
    /// `true` when significant at the given two-sided level (e.g. 0.05).
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Paired t-test over per-request metric pairs (e.g. RAPID vs PRM on
/// the same test requests). Returns `None` for fewer than 2 pairs or a
/// degenerate (zero-variance) difference.
pub fn paired_t_test(a: &[f32], b: &[f32]) -> Option<TTestResult> {
    assert_eq!(a.len(), b.len(), "paired_t_test: unequal sample sizes");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let diffs: Vec<f32> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let md = f64::from(mean(&diffs));
    let sd = f64::from(std_dev(&diffs));
    // lint:allow(float-eq) — a degenerate (zero-variance) sample has no t statistic
    if sd == 0.0 {
        return None;
    }
    let t = md / (sd / (n as f64).sqrt());
    let df = (n - 1) as f64;
    Some(TTestResult {
        t,
        df,
        p_value: two_sided_p(t, df),
    })
}

/// Welch's unequal-variance t-test for two independent samples. Returns
/// `None` for degenerate inputs.
pub fn welch_t_test(a: &[f32], b: &[f32]) -> Option<TTestResult> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (ma, mb) = (f64::from(mean(a)), f64::from(mean(b)));
    let (sa, sb) = (f64::from(std_dev(a)), f64::from(std_dev(b)));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let va = sa * sa / na;
    let vb = sb * sb / nb;
    // lint:allow(float-eq) — a degenerate (zero-variance) sample has no t statistic
    if va + vb == 0.0 {
        return None;
    }
    let t = (ma - mb) / (va + vb).sqrt();
    let df = (va + vb) * (va + vb) / (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
    Some(TTestResult {
        t,
        df,
        p_value: two_sided_p(t, df),
    })
}

/// Two-sided p-value of a t statistic with `df` degrees of freedom:
/// `p = I_{df/(df+t²)}(df/2, 1/2)` via the regularised incomplete beta.
fn two_sided_p(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    incomplete_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Regularised incomplete beta `I_x(a, b)` by Lentz's continued
/// fraction (Numerical Recipes §6.4).
fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued-fraction core of the incomplete beta.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_5e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - std::f32::consts::SQRT_2).abs() < 1e-6);
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24.
        assert!(ln_gamma(1.0).abs() < 1e-9);
        assert!(ln_gamma(2.0).abs() < 1e-9);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn p_values_match_reference_points() {
        // t = 1.96 with df → ∞ gives p ≈ 0.05; at df = 100 it's ≈ 0.0527.
        let p = two_sided_p(1.96, 100.0);
        assert!((p - 0.0527).abs() < 0.002, "p = {p}");
        // t = 0 is p = 1.
        assert!((two_sided_p(0.0, 10.0) - 1.0).abs() < 1e-9);
        // t = 2.228, df = 10 is the classic 0.05 critical point.
        let p = two_sided_p(2.228, 10.0);
        assert!((p - 0.05).abs() < 0.001, "p = {p}");
    }

    #[test]
    fn paired_test_detects_a_clear_shift() {
        let a: Vec<f32> = (0..50).map(|i| 1.0 + 0.01 * i as f32).collect();
        let b: Vec<f32> = a.iter().map(|x| x - 0.2).collect();
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.t > 0.0);
        assert!(r.significant(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn paired_test_is_insensitive_to_shared_variance() {
        // Large between-request variance, tiny consistent improvement:
        // the paired test must still detect it.
        let base: Vec<f32> = (0..40).map(|i| (i as f32 * 0.7).sin() * 10.0).collect();
        let improved: Vec<f32> = base.iter().map(|x| x + 0.05).collect();
        let r = paired_t_test(&improved, &base).unwrap();
        assert!(r.significant(0.01));
        // Welch on the same data cannot (variance swamps the shift).
        let w = welch_t_test(&improved, &base).unwrap();
        assert!(!w.significant(0.05));
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(paired_t_test(&[1.0], &[2.0]).is_none());
        assert!(paired_t_test(&[1.0, 2.0], &[1.0, 2.0]).is_none());
        assert!(welch_t_test(&[1.0, 1.0], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn identical_samples_are_not_significant() {
        let a = [1.0f32, 2.0, 3.0, 2.5];
        let b = [1.1f32, 1.9, 3.05, 2.45];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(!r.significant(0.05));
    }

    #[test]
    fn summary_of() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.n, 2);
        assert!((s.std - std::f32::consts::SQRT_2).abs() < 1e-6);
    }
}
