//! Additional diversity metrics beyond the paper's `div@k` — provided
//! because downstream users of a diversification library routinely
//! report them: intra-list distance (ILD), α-NDCG, and the normalised
//! topic entropy of a prefix.

/// Intra-list distance at `k`: mean pairwise cosine *distance* between
/// the coverage vectors of the top-`k` items (Zhang & Hurley, 2008).
/// Returns 0 for prefixes shorter than 2.
pub fn ild_at_k(coverages: &[&[f32]], k: usize) -> f32 {
    let k = k.min(coverages.len());
    if k < 2 {
        return 0.0;
    }
    let mut total = 0.0f32;
    let mut pairs = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            total += 1.0 - cosine(coverages[i], coverages[j]);
            pairs += 1;
        }
    }
    total / pairs as f32
}

/// α-NDCG at `k` (Clarke et al., 2008): DCG with per-topic redundancy
/// decay — a click's gain on topic `t` is multiplied by
/// `(1 − α)^(count of earlier clicked items covering t)` — normalised by
/// a greedy ideal ordering of the clicked items.
///
/// `alpha` is conventionally 0.5. Returns 0 for clickless lists.
pub fn alpha_ndcg_at_k(clicks: &[bool], coverages: &[&[f32]], alpha: f32, k: usize) -> f32 {
    assert_eq!(
        clicks.len(),
        coverages.len(),
        "alpha_ndcg_at_k: {} clicks vs {} coverages",
        clicks.len(),
        coverages.len()
    );
    let m = coverages.first().map_or(0, |c| c.len());
    if !clicks.iter().any(|&c| c) || m == 0 {
        return 0.0;
    }
    let k = k.min(clicks.len());

    let dcg = alpha_dcg(
        &(0..k).filter(|&i| clicks[i]).collect::<Vec<_>>(),
        coverages,
        alpha,
        // Positions are the actual ranks of the clicked items.
        &(0..k).filter(|&i| clicks[i]).collect::<Vec<_>>(),
    );

    // Ideal: greedily order the clicked items (all of them, placed at
    // ranks 0..) to maximise the same gain.
    let clicked: Vec<usize> = (0..clicks.len()).filter(|&i| clicks[i]).collect();
    let ideal_order = greedy_alpha_order(&clicked, coverages, alpha);
    let take = ideal_order.len().min(k);
    let ranks: Vec<usize> = (0..take).collect();
    let idcg = alpha_dcg(&ideal_order[..take], coverages, alpha, &ranks);
    if idcg <= 0.0 {
        0.0
    } else {
        (dcg / idcg).min(1.0)
    }
}

/// α-decayed DCG of `items` (clicked item indices) shown at `ranks`.
fn alpha_dcg(items: &[usize], coverages: &[&[f32]], alpha: f32, ranks: &[usize]) -> f32 {
    let m = coverages.first().map_or(0, |c| c.len());
    let mut topic_seen = vec![0.0f32; m];
    let mut dcg = 0.0f32;
    for (&item, &rank) in items.iter().zip(ranks) {
        let mut gain = 0.0f32;
        for (t, &c) in coverages[item].iter().enumerate() {
            gain += c * (1.0 - alpha).powf(topic_seen[t]);
        }
        dcg += gain / (rank as f32 + 2.0).log2();
        for (t, &c) in coverages[item].iter().enumerate() {
            topic_seen[t] += c;
        }
    }
    dcg
}

/// Greedy ideal ordering for α-NDCG's normaliser.
fn greedy_alpha_order(items: &[usize], coverages: &[&[f32]], alpha: f32) -> Vec<usize> {
    let m = coverages.first().map_or(0, |c| c.len());
    let mut topic_seen = vec![0.0f32; m];
    let mut remaining: Vec<usize> = items.to_vec();
    let mut order = Vec::with_capacity(items.len());
    while !remaining.is_empty() {
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let gain: f32 = coverages[i]
                    .iter()
                    .enumerate()
                    .map(|(t, &c)| c * (1.0 - alpha).powf(topic_seen[t]))
                    .sum();
                (pos, gain)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty remaining");
        let item = remaining.swap_remove(pos);
        for (t, &c) in coverages[item].iter().enumerate() {
            topic_seen[t] += c;
        }
        order.push(item);
    }
    order
}

/// Normalised topic entropy of the top-`k` prefix's aggregated coverage
/// mass: 0 = one topic, 1 = uniform.
pub fn topic_entropy_at_k(coverages: &[&[f32]], k: usize) -> f32 {
    let k = k.min(coverages.len());
    let m = coverages.first().map_or(0, |c| c.len());
    if m < 2 || k == 0 {
        return 0.0;
    }
    let mut mass = vec![0.0f32; m];
    for cov in &coverages[..k] {
        for (acc, &c) in mass.iter_mut().zip(*cov) {
            *acc += c;
        }
    }
    let total: f32 = mass.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let h: f32 = mass
        .iter()
        .filter(|&&x| x > 0.0)
        .map(|&x| {
            let p = x / total;
            -p * p.ln()
        })
        .sum();
    h / (m as f32).ln()
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    // lint:allow(float-eq) — exact-zero guard before dividing by the norms
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn one_hot(m: usize, j: usize) -> Vec<f32> {
        let mut v = vec![0.0; m];
        v[j] = 1.0;
        v
    }

    #[test]
    fn ild_extremes() {
        let a = one_hot(3, 0);
        let b = one_hot(3, 1);
        let dup: Vec<&[f32]> = vec![&a, &a];
        assert!(ild_at_k(&dup, 2) < 1e-6, "identical items → ILD 0");
        let distinct: Vec<&[f32]> = vec![&a, &b];
        assert!(
            (ild_at_k(&distinct, 2) - 1.0).abs() < 1e-6,
            "orthogonal → ILD 1"
        );
        assert_eq!(ild_at_k(&distinct, 1), 0.0, "single item has no pairs");
    }

    #[test]
    fn alpha_ndcg_rewards_topic_spread() {
        let a = one_hot(2, 0);
        let b = one_hot(2, 1);
        // Three clicked items: two topic-0, one topic-1.
        let covs_spread: Vec<&[f32]> = vec![&a, &b, &a];
        let covs_clumped: Vec<&[f32]> = vec![&a, &a, &b];
        let clicks = [true, true, true];
        let spread = alpha_ndcg_at_k(&clicks, &covs_spread, 0.5, 3);
        let clumped = alpha_ndcg_at_k(&clicks, &covs_clumped, 0.5, 3);
        assert!(
            spread > clumped,
            "alternating topics should score higher: {spread} vs {clumped}"
        );
    }

    #[test]
    fn alpha_ndcg_is_one_for_ideal_order() {
        let a = one_hot(2, 0);
        let b = one_hot(2, 1);
        let covs: Vec<&[f32]> = vec![&a, &b];
        let clicks = [true, true];
        let v = alpha_ndcg_at_k(&clicks, &covs, 0.5, 2);
        assert!((v - 1.0).abs() < 1e-5, "ideal order scores 1, got {v}");
    }

    #[test]
    fn alpha_ndcg_zero_for_clickless() {
        let a = one_hot(2, 0);
        let covs: Vec<&[f32]> = vec![&a];
        assert_eq!(alpha_ndcg_at_k(&[false], &covs, 0.5, 1), 0.0);
    }

    #[test]
    fn topic_entropy_extremes() {
        let a = one_hot(4, 0);
        let same: Vec<&[f32]> = vec![&a; 4];
        assert!(topic_entropy_at_k(&same, 4) < 1e-6);
        let covs: Vec<Vec<f32>> = (0..4).map(|j| one_hot(4, j)).collect();
        let refs: Vec<&[f32]> = covs.iter().map(|v| v.as_slice()).collect();
        assert!((topic_entropy_at_k(&refs, 4) - 1.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn ild_bounded(
            covs in proptest::collection::vec(
                proptest::collection::vec(0.0f32..=1.0, 3), 2..8),
            k in 2usize..10,
        ) {
            let refs: Vec<&[f32]> = covs.iter().map(|v| v.as_slice()).collect();
            let v = ild_at_k(&refs, k);
            prop_assert!((0.0..=2.0 + 1e-6).contains(&v));
        }

        #[test]
        fn alpha_ndcg_bounded(
            pattern in proptest::collection::vec(any::<bool>(), 2..8),
            alpha in 0.1f32..0.9,
        ) {
            let covs: Vec<Vec<f32>> = (0..pattern.len())
                .map(|i| {
                    let mut v = vec![0.0f32; 3];
                    v[i % 3] = 1.0;
                    v
                })
                .collect();
            let refs: Vec<&[f32]> = covs.iter().map(|v| v.as_slice()).collect();
            let v = alpha_ndcg_at_k(&pattern, &refs, alpha, pattern.len());
            prop_assert!((0.0..=1.0 + 1e-5).contains(&v));
        }

        #[test]
        fn topic_entropy_bounded(
            covs in proptest::collection::vec(
                proptest::collection::vec(0.0f32..=1.0, 4), 1..8),
        ) {
            let refs: Vec<&[f32]> = covs.iter().map(|v| v.as_slice()).collect();
            let v = topic_entropy_at_k(&refs, refs.len());
            prop_assert!((0.0..=1.0 + 1e-6).contains(&v));
        }
    }
}
