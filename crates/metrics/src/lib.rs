//! Evaluation metrics and significance tests (§IV-B2 of the paper).
//!
//! * [`ranking`] — `click@k`, `ndcg@k`, `rev@k` over click labels.
//! * [`stats`] — mean/std aggregation, paired and Welch t-tests with
//!   exact Student-t p-values (incomplete-beta implementation), used for
//!   the significance stars in Tables II and III.
//!
//! `div@k` lives in `rapid-diversity` (it is pure coverage math);
//! `satis@k` lives in `rapid-click` (it is a DCM quantity). Both are
//! re-exported here so the evaluation pipeline has one metrics import.

pub mod diversity_extra;
pub mod ranking;
pub mod stats;

pub use diversity_extra::{alpha_ndcg_at_k, ild_at_k, topic_entropy_at_k};
pub use ranking::{click_at_k, ndcg_at_k, rev_at_k};
pub use stats::{mean, paired_t_test, std_dev, welch_t_test, Summary, TTestResult};

pub use rapid_click::Dcm;
pub use rapid_diversity::topic_coverage_at_k;
