//! Click-label ranking metrics.

/// `click@k`: number of clicked items in the top-`k` prefix.
pub fn click_at_k(clicks: &[bool], k: usize) -> f32 {
    clicks.iter().take(k).filter(|&&c| c).count() as f32
}

/// `ndcg@k` with binary click gains: `DCG@k / IDCG@k`, where
/// `DCG@k = Σ_{i<k} y_i / log2(i + 2)` and the ideal ranking puts all
/// clicked items first. Returns 0 for a clickless list (the paper's
/// convention — such lists contribute no ranking signal).
pub fn ndcg_at_k(clicks: &[bool], k: usize) -> f32 {
    let k = k.min(clicks.len());
    let total_clicks = clicks.iter().filter(|&&c| c).count();
    if total_clicks == 0 {
        return 0.0;
    }
    let dcg: f32 = clicks
        .iter()
        .take(k)
        .enumerate()
        .filter(|(_, &c)| c)
        .map(|(i, _)| 1.0 / (i as f32 + 2.0).log2())
        .sum();
    let idcg: f32 = (0..total_clicks.min(k))
        .map(|i| 1.0 / (i as f32 + 2.0).log2())
        .sum();
    dcg / idcg
}

/// `rev@k`: total bid-weighted clicks in the top-`k` prefix — the App
/// Store platform's revenue objective (Table III).
///
/// # Panics
/// Panics if `bids` is shorter than `clicks`.
pub fn rev_at_k(clicks: &[bool], bids: &[f32], k: usize) -> f32 {
    assert!(
        bids.len() >= clicks.len(),
        "rev_at_k: {} bids for {} positions",
        bids.len(),
        clicks.len()
    );
    clicks
        .iter()
        .zip(bids)
        .take(k)
        .filter(|(&c, _)| c)
        .map(|(_, &b)| b)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn click_at_k_counts_prefix_only() {
        let clicks = [true, false, true, true];
        assert_eq!(click_at_k(&clicks, 1), 1.0);
        assert_eq!(click_at_k(&clicks, 2), 1.0);
        assert_eq!(click_at_k(&clicks, 4), 3.0);
        assert_eq!(click_at_k(&clicks, 99), 3.0);
    }

    #[test]
    fn ndcg_is_one_for_perfect_ranking() {
        let clicks = [true, true, false, false];
        assert!((ndcg_at_k(&clicks, 4) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ndcg_penalises_clicks_at_the_bottom() {
        let top = [true, false, false, false];
        let bottom = [false, false, false, true];
        assert!(ndcg_at_k(&top, 4) > ndcg_at_k(&bottom, 4));
    }

    #[test]
    fn ndcg_of_clickless_list_is_zero() {
        assert_eq!(ndcg_at_k(&[false, false], 2), 0.0);
    }

    #[test]
    fn ndcg_handles_clicks_outside_prefix() {
        // One click below the cutoff: DCG@2 = 0, but IDCG@2 > 0.
        let clicks = [false, false, true];
        assert_eq!(ndcg_at_k(&clicks, 2), 0.0);
    }

    #[test]
    fn rev_weights_clicks_by_bids() {
        let clicks = [true, false, true];
        let bids = [2.0, 5.0, 3.0];
        assert_eq!(rev_at_k(&clicks, &bids, 3), 5.0);
        assert_eq!(rev_at_k(&clicks, &bids, 1), 2.0);
    }

    proptest! {
        /// NDCG stays in [0, 1] for any click pattern.
        #[test]
        fn ndcg_is_bounded(clicks in proptest::collection::vec(any::<bool>(), 1..20), k in 1usize..25) {
            let v = ndcg_at_k(&clicks, k);
            prop_assert!((0.0..=1.0 + 1e-6).contains(&v));
        }

        /// click@k is monotone in k.
        #[test]
        fn clicks_monotone_in_k(clicks in proptest::collection::vec(any::<bool>(), 1..20)) {
            let mut prev = 0.0;
            for k in 1..=clicks.len() {
                let c = click_at_k(&clicks, k);
                prop_assert!(c >= prev);
                prev = c;
            }
        }
    }
}
