//! RAPID configuration, including every ablation of Fig. 3.

use serde::{Deserialize, Serialize};

/// How the final re-ranking scores are produced (§III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputMode {
    /// Eq. (7): one MLP emits the score directly (RAPID-det).
    Deterministic,
    /// Eq. (8)–(10): mean and stddev heads, reparameterized sampling in
    /// training, UCB `φ̂ + Σ̂` at inference (RAPID-pro).
    Probabilistic,
}

/// Which architecture models the listwise context (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RelevanceEncoder {
    /// The paper's default Bi-LSTM.
    BiLstm,
    /// The RAPID-trans ablation: a transformer encoder layer with
    /// learned position embeddings.
    Transformer,
}

/// How the per-topic behavior sequences are encoded (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BehaviorEncoder {
    /// The paper's default: an LSTM over each topic sequence (weights
    /// shared across topics), final state as the topic representation.
    Lstm,
    /// The RAPID-mean ablation: plain mean pooling of the topic's item
    /// embeddings, linearly projected to the hidden size.
    Mean,
}

/// Full RAPID hyper-parameter set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RapidConfig {
    /// Hidden size `q_h` (paper grid: {8, 16, 32, 64}).
    pub hidden: usize,
    /// Maximum per-topic behavior sequence length `D` (paper: 5).
    pub behavior_len: usize,
    /// Output head.
    pub output: OutputMode,
    /// Listwise context encoder.
    pub relevance_encoder: RelevanceEncoder,
    /// Behavior sequence encoder.
    pub behavior_encoder: BehaviorEncoder,
    /// `false` removes the personalized diversity estimator entirely
    /// (the RAPID-RNN ablation).
    pub use_diversity: bool,
    /// Maximum list length (sizes the transformer position table).
    pub max_len: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate (paper grid: {1e-5 … 1e-2}).
    pub lr: f32,
    /// Lists per optimizer step.
    pub batch: usize,
    /// Seed for init, topic-sequence sampling, and reparameterization
    /// noise.
    pub seed: u64,
}

impl Default for RapidConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            behavior_len: 5,
            output: OutputMode::Probabilistic,
            relevance_encoder: RelevanceEncoder::BiLstm,
            behavior_encoder: BehaviorEncoder::Lstm,
            use_diversity: true,
            max_len: 30,
            epochs: 4,
            lr: 3e-3,
            batch: 16,
            seed: 0,
        }
    }
}

impl RapidConfig {
    /// RAPID-det: the deterministic output head.
    pub fn deterministic() -> Self {
        Self {
            output: OutputMode::Deterministic,
            ..Self::default()
        }
    }

    /// RAPID-pro: the probabilistic/UCB output head (the default).
    pub fn probabilistic() -> Self {
        Self::default()
    }

    /// RAPID-RNN ablation: no personalized diversity estimator.
    pub fn without_diversity() -> Self {
        Self {
            use_diversity: false,
            ..Self::default()
        }
    }

    /// RAPID-mean ablation: mean-pooled behavior encoding.
    pub fn mean_behavior() -> Self {
        Self {
            behavior_encoder: BehaviorEncoder::Mean,
            ..Self::default()
        }
    }

    /// RAPID-trans ablation: transformer listwise encoder.
    pub fn transformer_relevance() -> Self {
        Self {
            relevance_encoder: RelevanceEncoder::Transformer,
            ..Self::default()
        }
    }

    /// Display name matching the paper's tables for this variant.
    pub fn variant_name(&self) -> &'static str {
        if !self.use_diversity {
            return "RAPID-RNN";
        }
        if self.behavior_encoder == BehaviorEncoder::Mean {
            return "RAPID-mean";
        }
        if self.relevance_encoder == RelevanceEncoder::Transformer {
            return "RAPID-trans";
        }
        match self.output {
            OutputMode::Deterministic => "RAPID-det",
            OutputMode::Probabilistic => "RAPID-pro",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names_match_the_paper() {
        assert_eq!(RapidConfig::deterministic().variant_name(), "RAPID-det");
        assert_eq!(RapidConfig::probabilistic().variant_name(), "RAPID-pro");
        assert_eq!(RapidConfig::without_diversity().variant_name(), "RAPID-RNN");
        assert_eq!(RapidConfig::mean_behavior().variant_name(), "RAPID-mean");
        assert_eq!(
            RapidConfig::transformer_relevance().variant_name(),
            "RAPID-trans"
        );
    }

    #[test]
    fn paper_defaults() {
        let c = RapidConfig::default();
        assert_eq!(c.behavior_len, 5, "paper sets D = 5");
        assert!(c.use_diversity);
        assert_eq!(c.output, OutputMode::Probabilistic);
    }
}
