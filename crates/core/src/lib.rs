//! **RAPID** — Re-ranking with Personalized Diversification (§III of the
//! paper): the primary contribution of this reproduction.
//!
//! RAPID jointly estimates, for every item of an initial ranking list:
//!
//! 1. **Listwise relevance** (§III-B): a Bi-LSTM over the list's item
//!    representations `e_i = [x_u, x_v, τ_v]` captures cross-item
//!    interactions in both directions, yielding `h_i ∈ R^{2q_h}`.
//! 2. **Personalized diversity** (§III-C): the user's behavior history
//!    is split into per-topic sequences `T_1 … T_m`; an LSTM encodes the
//!    intra-topic dynamics, self-attention (Eq. 2) captures inter-topic
//!    interactions, and an MLP (Eq. 3) emits the preference distribution
//!    `θ̂ ∈ R^m`. Each item's marginal coverage gain `d_R(R(i))`
//!    (Eq. 5) is weighted elementwise by `θ̂` into the personalized
//!    diversity gain `Δ_R(R(i))` (Eq. 6).
//!
//! The re-ranker head fuses `[H_R, Δ_R]` with an MLP — either
//! **deterministically** (Eq. 7) or **probabilistically** (Eq. 8–10):
//! the probabilistic head learns a mean and a standard deviation per
//! item, trains through the reparameterization trick, and ranks at
//! inference by the upper confidence bound `φ̂ + Σ̂`, which injects
//! LinUCB-style exploration.
//!
//! Training minimises the cross-entropy of Eq. (11) against click
//! feedback, end to end — the relevance/diversity tradeoff is learned,
//! never hand-tuned.
//!
//! The ablation variants of Fig. 3 are all first-class configurations:
//! `RAPID-RNN` ([`RapidConfig::without_diversity`]), `RAPID-mean`
//! ([`BehaviorEncoder::Mean`]), `RAPID-det` ([`OutputMode::Deterministic`]),
//! and `RAPID-trans` ([`RelevanceEncoder::Transformer`]).

mod config;
mod diversity_estimator;
mod model;
mod relevance_estimator;

pub use config::{BehaviorEncoder, OutputMode, RapidConfig, RelevanceEncoder};
pub use diversity_estimator::DiversityEstimator;
pub use model::Rapid;
pub use relevance_estimator::RelevanceEstimator;
