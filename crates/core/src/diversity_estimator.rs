//! The personalized diversity estimator (§III-C): per-topic behavior
//! encoding → inter-topic self-attention (Eq. 2) → preference
//! distribution `θ̂` (Eq. 3) → personalized diversity gain (Eq. 6).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rapid_autograd::{ParamStore, Tape, Var};
use rapid_data::{topic_sequences, Dataset, ItemId, UserId};
use rapid_diversity::marginal_diversity;
use rapid_nn::{self_attention, Activation, Linear, Lstm, Mlp};
use rapid_tensor::Matrix;

use crate::config::BehaviorEncoder;

/// Learns each user's preference distribution over topics from their
/// per-topic behavior sequences and converts an item's marginal
/// coverage gain into the *personalized* diversity gain.
pub struct DiversityEstimator {
    encoder: TopicEncoder,
    mlp_theta: Mlp,
    /// Per-user per-topic behavior sequences, sampled once at
    /// construction (topic assignment follows each item's coverage
    /// distribution, per the paper) so the model is deterministic.
    sequences: Vec<Vec<Vec<ItemId>>>,
    /// Per-user time-major behavior input planes, materialised once at
    /// construction so no forward pass re-gathers features from the
    /// dataset.
    planes: Vec<Vec<Matrix>>,
}

enum TopicEncoder {
    /// LSTM over each topic sequence (weights shared across topics — the
    /// per-topic inputs are batched as rows).
    Lstm(Lstm),
    /// RAPID-mean ablation: mean of item embeddings, linear projection.
    Mean(Linear),
}

impl DiversityEstimator {
    /// Registers parameters under `prefix` and samples the per-topic
    /// behavior sequences for every user.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        ds: &Dataset,
        encoder: BehaviorEncoder,
        hidden: usize,
        behavior_len: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let m = ds.num_topics();
        let step_dim = ds.users[0].features.len() + ds.items[0].features.len();
        let enc = match encoder {
            BehaviorEncoder::Lstm => TopicEncoder::Lstm(Lstm::new(
                store,
                &format!("{prefix}.topic_lstm"),
                step_dim,
                hidden,
                rng,
            )),
            BehaviorEncoder::Mean => TopicEncoder::Mean(Linear::new(
                store,
                &format!("{prefix}.topic_mean"),
                step_dim,
                hidden,
                rng,
            )),
        };
        let mlp_theta = Mlp::new(
            store,
            &format!("{prefix}.mlp_theta"),
            &[m * hidden, 2 * hidden, m],
            Activation::Relu,
            rng,
        )
        .with_output_activation(Activation::Sigmoid);

        // Deterministic per-user topic assignment, seeded independently
        // of the weight init stream.
        let mut seq_rng = StdRng::seed_from_u64(rng.gen::<u64>() ^ 0x5eed_d1ce);
        let sequences: Vec<Vec<Vec<ItemId>>> = ds
            .users
            .iter()
            .map(|u| topic_sequences(&u.history, &ds.items, m, behavior_len, &mut seq_rng))
            .collect();
        let planes = ds
            .users
            .iter()
            .map(|u| Self::build_planes(ds, u.id, &sequences[u.id], behavior_len))
            .collect();

        Self {
            encoder: enc,
            mlp_theta,
            sequences,
            planes,
        }
    }

    /// The user's per-topic sequences (for inspection / case studies).
    pub fn sequences(&self, user: UserId) -> &[Vec<ItemId>] {
        &self.sequences[user]
    }

    /// Builds the time-major `(m, q_u + q_v)` input planes of a user's
    /// per-topic sequences, front-padded with zeros to `behavior_len`.
    /// Called once per user at construction; forwards read the cached
    /// planes.
    fn build_planes(
        ds: &Dataset,
        user: UserId,
        sequences: &[Vec<ItemId>],
        behavior_len: usize,
    ) -> Vec<Matrix> {
        let m = ds.num_topics();
        let step_dim = ds.users[0].features.len() + ds.items[0].features.len();
        let xu = &ds.users[user].features;
        let d_len = behavior_len;
        let mut planes = Vec::with_capacity(d_len);
        for t in 0..d_len {
            let mut plane = Matrix::zeros(m, step_dim);
            for (topic, seq) in sequences.iter().enumerate() {
                let take = seq.len().min(d_len);
                let offset = d_len - take;
                if t >= offset {
                    let item = seq[seq.len() - take + (t - offset)];
                    let row = plane.row_mut(topic);
                    row[..xu.len()].copy_from_slice(xu);
                    row[xu.len()..].copy_from_slice(&ds.items[item].features);
                }
            }
            planes.push(plane);
        }
        planes
    }

    /// Computes the preference distribution `θ̂ ∈ (0,1)^m` (Eq. 2–3) as
    /// a `(1, m)` node.
    pub fn preference_distribution(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        _ds: &Dataset,
        user: UserId,
    ) -> Var {
        let planes = &self.planes[user];
        let topic_reps = match &self.encoder {
            TopicEncoder::Lstm(lstm) => {
                let steps: Vec<Var> = planes.iter().map(|p| tape.constant(p.clone())).collect();
                let states = lstm.forward(tape, store, &steps);
                *states.last().expect("behavior_len > 0") // (m, q_h)
            }
            TopicEncoder::Mean(proj) => {
                // Mean over the D steps, then projected.
                let d_len = planes.len() as f32;
                let mut acc = planes[0].clone();
                for p in &planes[1..] {
                    acc.add_assign(p);
                }
                let mean = tape.constant(acc.scale(1.0 / d_len));
                proj.forward(tape, store, mean) // (m, q_h)
            }
        };
        // Inter-topic interactions: A = softmax(V Vᵀ / √q_h) V (Eq. 2).
        let attended = self_attention(tape, topic_reps);
        // Flatten [a_1, …, a_m] into one row for MLP_θ (Eq. 3).
        let m = tape.value(attended).rows();
        let rows: Vec<Var> = (0..m)
            .map(|j| tape.slice_rows(attended, j, j + 1))
            .collect();
        let flat = tape.concat_cols(&rows); // (1, m·q_h)
        self.mlp_theta.forward(tape, store, flat) // (1, m)
    }

    /// The constant `(L, m)` marginal-diversity matrix `d_R` (Eq. 5).
    pub fn marginal_diversity_matrix(ds: &Dataset, items: &[ItemId]) -> Matrix {
        let covs: Vec<&[f32]> = items
            .iter()
            .map(|&v| ds.items[v].coverage.as_slice())
            .collect();
        let m = ds.num_topics();
        let mut data = Vec::with_capacity(items.len() * m);
        for i in 0..items.len() {
            data.extend(marginal_diversity(&covs, i));
        }
        Matrix::from_vec(items.len(), m, data)
    }

    /// The personalized diversity gain `Δ_R = θ̂ ⊙ d_R` (Eq. 6) as an
    /// `(L, m)` node. `novelty` is the precomputed `(L, m)` marginal
    /// diversity matrix `d_R` (a `PreparedList` carries it; legacy
    /// callers build it with [`Self::marginal_diversity_matrix`]).
    pub fn personalized_gain(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        ds: &Dataset,
        user: UserId,
        novelty: &Matrix,
    ) -> Var {
        let theta = self.preference_distribution(tape, store, ds, user);
        let d_r = tape.constant(novelty.clone());
        tape.mul_row_broadcast(d_r, theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_data::{generate, DataConfig, Flavor};

    fn tiny() -> Dataset {
        let mut c = DataConfig::new(Flavor::Taobao);
        c.num_users = 12;
        c.num_items = 80;
        c.ranker_train_interactions = 50;
        c.rerank_train_requests = 3;
        c.test_requests = 2;
        generate(&c)
    }

    fn build(ds: &Dataset, encoder: BehaviorEncoder) -> (ParamStore, DiversityEstimator) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let est = DiversityEstimator::new(&mut store, "div", ds, encoder, 16, 5, &mut rng);
        (store, est)
    }

    #[test]
    fn theta_has_topic_width_and_unit_range() {
        let ds = tiny();
        for enc in [BehaviorEncoder::Lstm, BehaviorEncoder::Mean] {
            let (store, est) = build(&ds, enc);
            let mut tape = Tape::new();
            let theta = est.preference_distribution(&mut tape, &store, &ds, 3);
            let v = tape.value(theta);
            assert_eq!(v.shape(), (1, ds.num_topics()));
            assert!(v.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn gain_is_bounded_by_marginal_diversity() {
        // θ̂ ∈ (0,1), so the personalized gain can never exceed the raw
        // marginal diversity.
        let ds = tiny();
        let (store, est) = build(&ds, BehaviorEncoder::Lstm);
        let items = &ds.test[0].candidates;
        let raw = DiversityEstimator::marginal_diversity_matrix(&ds, items);
        let mut tape = Tape::new();
        let gain = est.personalized_gain(&mut tape, &store, &ds, 0, &raw);
        let g = tape.value(gain);
        assert_eq!(g.shape(), raw.shape());
        for (gv, rv) in g.as_slice().iter().zip(raw.as_slice()) {
            assert!(*gv <= rv + 1e-6);
            assert!(*gv >= -1e-6);
        }
    }

    #[test]
    fn sequences_are_deterministic_per_construction_seed() {
        let ds = tiny();
        let (_, a) = build(&ds, BehaviorEncoder::Lstm);
        let (_, b) = build(&ds, BehaviorEncoder::Lstm);
        for u in 0..ds.users.len() {
            assert_eq!(a.sequences(u), b.sequences(u));
        }
    }

    #[test]
    fn sequences_respect_behavior_len() {
        let ds = tiny();
        let (_, est) = build(&ds, BehaviorEncoder::Lstm);
        for u in 0..ds.users.len() {
            for seq in est.sequences(u) {
                assert!(seq.len() <= 5);
            }
        }
    }

    #[test]
    fn duplicate_items_in_list_get_zero_marginal_diversity() {
        let ds = tiny();
        let items = vec![ds.test[0].candidates[0]; 3];
        let d = DiversityEstimator::marginal_diversity_matrix(&ds, &items);
        assert!(d.as_slice().iter().all(|&v| v.abs() < 1e-5));
    }
}
