//! The full RAPID model: estimators, output heads, training, and the
//! `ReRanker` implementation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapid_autograd::optim::Adam;
use rapid_autograd::{ParamStore, Tape, Var};
use rapid_data::Dataset;
use rapid_nn::{Activation, Mlp};
use rapid_rerankers::{FitReport, PreparedList, ReRanker, RerankInput};
use rapid_tensor::Matrix;

use crate::config::{OutputMode, RapidConfig};
use crate::diversity_estimator::DiversityEstimator;
use crate::relevance_estimator::RelevanceEstimator;

/// The RAPID re-ranker (§III). Construct with [`Rapid::new`], train with
/// [`ReRanker::fit`], apply with [`ReRanker::rerank`].
pub struct Rapid {
    config: RapidConfig,
    store: ParamStore,
    relevance: RelevanceEstimator,
    diversity: Option<DiversityEstimator>,
    head_mean: Mlp,
    /// Present only in probabilistic mode (Eq. 8).
    head_std: Option<Mlp>,
}

impl Rapid {
    /// Builds an untrained RAPID for the dataset's shapes.
    pub fn new(ds: &Dataset, config: RapidConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();

        let rel_in = RelevanceEstimator::input_dim(ds);
        let relevance = RelevanceEstimator::new(
            &mut store,
            "rapid.rel",
            config.relevance_encoder,
            rel_in,
            config.hidden,
            config.max_len,
            &mut rng,
        );

        let diversity = config.use_diversity.then(|| {
            DiversityEstimator::new(
                &mut store,
                "rapid.div",
                ds,
                config.behavior_encoder,
                config.hidden,
                config.behavior_len,
                &mut rng,
            )
        });

        let head_in = relevance.out_dim()
            + if config.use_diversity {
                ds.num_topics()
            } else {
                0
            };
        let head_mean = Mlp::new(
            &mut store,
            "rapid.head_mean",
            &[head_in, config.hidden, 1],
            Activation::Relu,
            &mut rng,
        );
        let head_std = (config.output == OutputMode::Probabilistic).then(|| {
            Mlp::new(
                &mut store,
                "rapid.head_std",
                &[head_in, config.hidden, 1],
                Activation::Relu,
                &mut rng,
            )
            .with_output_activation(Activation::Softplus)
        });

        Self {
            config,
            store,
            relevance,
            diversity,
            head_mean,
            head_std,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &RapidConfig {
        &self.config
    }

    /// Number of scalar parameters.
    pub fn num_weights(&self) -> usize {
        self.store.num_weights()
    }

    /// The learned preference distribution `θ̂` for a user (used by the
    /// Fig. 5 case study). `None` for the RAPID-RNN ablation.
    pub fn preference_distribution(&self, ds: &Dataset, user: usize) -> Option<Vec<f32>> {
        let div = self.diversity.as_ref()?;
        let mut tape = Tape::new();
        let theta = div.preference_distribution(&mut tape, &self.store, ds, user);
        Some(tape.value(theta).as_slice().to_vec())
    }

    /// Builds the fused head input `[H_R, Δ_R]` (Eq. 7/8 input). The
    /// prepared feature matrix has the exact `[x_u, x_v, τ_v, s]` layout
    /// of [`RelevanceEstimator::item_representations`], and the prepared
    /// novelty matrix is `d_R` (Eq. 5), so nothing is re-gathered here.
    fn head_input(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        ds: &Dataset,
        prep: &PreparedList,
    ) -> Var {
        let reps = tape.constant(prep.features.clone());
        let h_r = self.relevance.forward(tape, store, reps);
        match &self.diversity {
            Some(div) => {
                let delta = div.personalized_gain(tape, store, ds, prep.user(), &prep.novelty);
                tape.concat_cols(&[h_r, delta])
            }
            None => h_r,
        }
    }

    /// Training-time scores `(L, 1)`: deterministic logits (Eq. 7) or the
    /// reparameterized sample `φ̂ + ξ ⊙ Σ̂` (Eq. 9).
    fn train_scores(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        ds: &Dataset,
        prep: &PreparedList,
        noise_rng: &mut StdRng,
    ) -> Var {
        let fused = self.head_input(tape, store, ds, prep);
        let mean = self.head_mean.forward(tape, store, fused);
        match &self.head_std {
            None => mean,
            Some(head_std) => {
                let std = head_std.forward(tape, store, fused);
                let xi = Matrix::rand_normal(prep.len(), 1, 0.0, 1.0, noise_rng);
                let xi = tape.constant(xi);
                let noise = tape.mul(xi, std);
                tape.add(mean, noise)
            }
        }
    }

    /// Writes a training checkpoint (all parameters) to `w`.
    pub fn save(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        self.store.save(w)
    }

    /// Restores a checkpoint written by [`Rapid::save`] into this model.
    /// The model must have been constructed with the same configuration
    /// and dataset shapes (parameter names and shapes must match).
    ///
    /// # Errors
    /// Returns `InvalidData` on format, name, or shape mismatches.
    pub fn load(&mut self, r: &mut impl std::io::Read) -> std::io::Result<()> {
        let loaded = ParamStore::load(r)?;
        self.store.restore_from(&loaded)
    }

    /// Restores this model's parameters from an in-memory store — the
    /// hot-load path for serving, where the store comes from a v2
    /// training checkpoint (`rapid_autograd::Checkpoint::load_path`)
    /// rather than a `Rapid::save` stream.
    ///
    /// # Errors
    /// Returns `InvalidData` on name or shape mismatches.
    pub fn restore(&mut self, params: &ParamStore) -> std::io::Result<()> {
        self.store.restore_from(params)
    }

    /// Records the inference-time score graph `(L, 1)` onto `tape`:
    /// logits (det) or the UCB `φ̂ + Σ̂` (Eq. 10).
    fn score_graph(&self, tape: &mut Tape, ds: &Dataset, prep: &PreparedList) -> Var {
        let fused = self.head_input(tape, &self.store, ds, prep);
        let mean = self.head_mean.forward(tape, &self.store, fused);
        match &self.head_std {
            None => mean,
            Some(head_std) => {
                let std = head_std.forward(tape, &self.store, fused);
                tape.add(mean, std)
            }
        }
    }

    /// Inference-time scores: logits (det) or the UCB `φ̂ + Σ̂` (Eq. 10).
    pub fn scores_prepared(&self, ds: &Dataset, prep: &PreparedList) -> Vec<f32> {
        let mut tape = Tape::new();
        let out = self.score_graph(&mut tape, ds, prep);
        tape.value(out).as_slice().to_vec()
    }

    /// Legacy shim of [`Rapid::scores_prepared`] for `(ds, input)`
    /// callers: prepares the list on the fly.
    pub fn scores(&self, ds: &Dataset, input: &RerankInput) -> Vec<f32> {
        self.scores_prepared(ds, &PreparedList::from_input(ds, input.clone()))
    }

    /// The shared training body behind `fit_prepared` (no checkpointing)
    /// and `fit_resumable` (crash-safe periodic checkpoints + resume).
    ///
    /// Resume is *fast-forward replay*: the checkpoint restores
    /// parameters, Adam state, and the epoch cursor, then both RNG
    /// streams — the epoch shuffle and (probabilistic head only) the
    /// reparameterization noise — are recreated from their seeds and
    /// advanced through the completed epochs' draws, so the remaining
    /// epochs are bit-identical to an uninterrupted run's.
    fn fit_impl(
        &mut self,
        ds: &Dataset,
        lists: &[PreparedList],
        ckpt: Option<&rapid_autograd::CheckpointConfig>,
    ) -> FitReport {
        use rand::seq::SliceRandom;
        let mut optimizer = Adam::new(self.config.lr);
        let checkpointer = ckpt.map(|c| rapid_autograd::Checkpointer::new(c.clone()));
        let start_epoch = rapid_rerankers::resume_into(
            checkpointer.as_ref(),
            self.name(),
            &mut self.store,
            &mut optimizer,
        )
        .min(self.config.epochs);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut noise_rng = StdRng::seed_from_u64(self.config.seed ^ 0xdead_beef);
        let mut order: Vec<usize> = (0..lists.len()).collect();
        let batch = self.config.batch.max(1);
        for _ in 0..start_epoch {
            order.shuffle(&mut rng);
            if self.head_std.is_some() {
                // Replay the per-list noise draws of the completed
                // epochs in chunk order, discarding the samples.
                for chunk in order.chunks(batch) {
                    for &i in chunk {
                        let _ = Matrix::rand_normal(lists[i].len(), 1, 0.0, 1.0, &mut noise_rng);
                    }
                }
            }
        }
        let mut tape = Tape::new();
        // This loop differs from `fit_listwise_opts` only in the
        // reparameterization noise fed through `train_scores`; the
        // backward/update path is the shared `TrainStep`.
        let mut step =
            rapid_rerankers::TrainStep::new(self.name(), lists.len(), self.config.batch, Some(5.0));
        if let Some(ck) = checkpointer {
            step = step.with_checkpointer(ck);
        }
        step.resume_from(start_epoch);
        for _ in start_epoch..self.config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(batch) {
                step.begin_batch();
                tape.clear();
                let mut losses = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let prep = &lists[i];
                    let scores =
                        self.train_scores(&mut tape, &self.store, ds, prep, &mut noise_rng);
                    let clicks = prep.labels();
                    let targets = Matrix::from_vec(
                        clicks.len(),
                        1,
                        clicks.iter().map(|&c| if c { 1.0 } else { 0.0 }).collect(),
                    );
                    losses.push(tape.bce_with_logits(scores, &targets));
                }
                let stacked = tape.concat_cols(&losses);
                let total = tape.mean_all(stacked);
                step.step(&mut tape, total, &mut self.store, &mut optimizer);
            }
        }
        step.finish(self.config.epochs)
    }
}

impl ReRanker for Rapid {
    fn name(&self) -> &'static str {
        self.config.variant_name()
    }

    fn fit_prepared(&mut self, ds: &Dataset, lists: &[PreparedList]) -> FitReport {
        self.fit_impl(ds, lists, None)
    }

    fn fit_resumable(
        &mut self,
        ds: &Dataset,
        lists: &[PreparedList],
        ckpt: &rapid_autograd::CheckpointConfig,
    ) -> FitReport {
        self.fit_impl(ds, lists, Some(ckpt))
    }

    fn rerank_prepared(&self, ds: &Dataset, prep: &PreparedList) -> Vec<usize> {
        let scores = self.scores_prepared(ds, prep);
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        order
    }

    fn record_graph(&self, ds: &Dataset, prep: &PreparedList, tape: &mut Tape) -> Option<Var> {
        Some(self.score_graph(tape, ds, prep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_rerankers::is_permutation;

    mod fixtures {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use rapid_click::Dcm;
        use rapid_data::{generate, DataConfig, Dataset, Flavor};
        use rapid_rerankers::{RerankInput, TrainSample};

        pub fn tiny_dataset(seed: u64) -> Dataset {
            let mut c = DataConfig::new(Flavor::MovieLens);
            c.num_users = 50;
            c.num_items = 250;
            c.ranker_train_interactions = 300;
            c.rerank_train_requests = 150;
            c.test_requests = 20;
            c.seed = seed;
            generate(&c)
        }

        pub fn click_samples(ds: &Dataset, n: usize, seed: u64) -> Vec<TrainSample> {
            let mut rng = StdRng::seed_from_u64(seed);
            let dcm = Dcm::standard(ds.config.list_len, 0.5);
            (0..n)
                .map(|i| {
                    let req = &ds.rerank_train[i % ds.rerank_train.len()];
                    let mut scored: Vec<(usize, f32)> = req
                        .candidates
                        .iter()
                        .map(|&v| {
                            let noise: f32 = rng.gen_range(-0.5..0.5);
                            (v, ds.attraction(req.user, v) + noise)
                        })
                        .collect();
                    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
                    let input = RerankInput {
                        user: req.user,
                        items: scored.iter().map(|x| x.0).collect(),
                        init_scores: scored.iter().map(|x| x.1).collect(),
                    };
                    let phi = dcm.attractions(ds, input.user, &input.items);
                    let clicks = dcm.simulate(&phi, &mut rng);
                    TrainSample { input, clicks }
                })
                .collect()
        }

        pub fn top_click_rate(
            samples: &[TrainSample],
            mut policy: impl FnMut(&RerankInput) -> Vec<usize>,
        ) -> f32 {
            let total: f32 = samples
                .iter()
                .map(|s| {
                    let perm = policy(&s.input);
                    perm.iter().take(5).filter(|&&i| s.clicks[i]).count() as f32
                })
                .sum();
            total / samples.len() as f32
        }
    }

    use fixtures::*;

    #[test]
    fn every_variant_builds_and_outputs_permutations() {
        let ds = tiny_dataset(21);
        let samples = click_samples(&ds, 8, 1);
        for config in [
            RapidConfig::deterministic(),
            RapidConfig::probabilistic(),
            RapidConfig::without_diversity(),
            RapidConfig::mean_behavior(),
            RapidConfig::transformer_relevance(),
        ] {
            let mut model = Rapid::new(
                &ds,
                RapidConfig {
                    epochs: 1,
                    ..config
                },
            );
            model.fit(&ds, &samples);
            let perm = model.rerank(&ds, &samples[0].input);
            assert!(
                is_permutation(&perm, samples[0].input.len()),
                "variant {}",
                model.name()
            );
        }
    }

    #[test]
    fn first_batch_memory_stays_within_the_static_liveness_bound() {
        // Validates `rapid_check::analyze_liveness` against reality:
        // record the exact graph `fit` builds for one training batch
        // (probabilistic variant — the largest graph, with both heads
        // and the reparameterization noise), then check that what the
        // tape actually allocates after a full backward pass never
        // exceeds the static peak-live-bytes bound.
        let ds = tiny_dataset(25);
        let samples = click_samples(&ds, 8, 5);
        let config = RapidConfig {
            epochs: 1,
            ..RapidConfig::probabilistic()
        };
        let batch = config.batch;
        let mut model = Rapid::new(&ds, config);
        let lists: Vec<_> = samples
            .iter()
            .map(|s| rapid_rerankers::PreparedList::from_sample(&ds, s))
            .collect();
        let mut noise_rng = StdRng::seed_from_u64(9);

        let mut tape = Tape::new();
        let mut losses = Vec::new();
        for prep in lists.iter().take(batch) {
            let scores = model.train_scores(&mut tape, &model.store, &ds, prep, &mut noise_rng);
            let clicks = prep.labels();
            let targets = Matrix::from_vec(
                clicks.len(),
                1,
                clicks.iter().map(|&c| if c { 1.0 } else { 0.0 }).collect(),
            );
            losses.push(tape.bce_with_logits(scores, &targets));
        }
        let stacked = tape.concat_cols(&losses);
        let loss = tape.mean_all(stacked);

        let report = rapid_check::analyze_liveness(&tape, loss.index());
        assert!(report.fwd_peak_bytes > 0);
        assert!(report.train_peak_bytes >= report.fwd_peak_bytes);

        tape.backward(loss, &mut model.store);
        let measured = tape.value_bytes() + tape.grad_bytes();
        assert!(
            measured <= report.train_peak_bytes,
            "measured first-batch allocation {measured} B exceeds the \
             static bound {} B",
            report.train_peak_bytes
        );
        // The plan's reusable pool should beat keeping every value live
        // on a graph this deep, or the pass is not planning anything.
        assert!(
            report.plan.pool_bytes() < report.total_value_bytes,
            "buffer reuse saved nothing: pool {} B vs total {} B",
            report.plan.pool_bytes(),
            report.total_value_bytes
        );
    }

    #[test]
    fn learns_to_beat_the_initial_order() {
        let ds = tiny_dataset(22);
        let samples = click_samples(&ds, 450, 3);
        let mut model = Rapid::new(
            &ds,
            RapidConfig {
                epochs: 15,
                ..RapidConfig::probabilistic()
            },
        );
        model.fit(&ds, &samples);
        let before = top_click_rate(&samples[..150], |inp| (0..inp.len()).collect());
        let after = top_click_rate(&samples[..150], |inp| model.rerank(&ds, inp));
        assert!(
            after > before * 1.02,
            "RAPID should beat the initial order: {after} vs {before}"
        );
    }

    #[test]
    fn preference_distribution_varies_across_users() {
        // θ̂ is identified only up to per-topic monotone transforms (the
        // fusion MLP can absorb sign and scale), so the testable claim
        // is *personalization*: different users' histories must yield
        // different preference distributions, and the spread must be
        // meaningful relative to the (0,1) range.
        let ds = tiny_dataset(23);
        let samples = click_samples(&ds, 300, 5);
        let mut model = Rapid::new(
            &ds,
            RapidConfig {
                epochs: 10,
                ..RapidConfig::probabilistic()
            },
        );
        model.fit(&ds, &samples);

        let thetas: Vec<Vec<f32>> = (0..ds.users.len())
            .map(|u| model.preference_distribution(&ds, u).unwrap())
            .collect();
        // Per-topic standard deviation across users, averaged.
        let m = ds.num_topics();
        let n = thetas.len() as f32;
        let mut mean_spread = 0.0f32;
        for j in 0..m {
            let col: Vec<f32> = thetas.iter().map(|t| t[j]).collect();
            let mu = col.iter().sum::<f32>() / n;
            let var = col.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / n;
            mean_spread += var.sqrt() / m as f32;
        }
        assert!(
            mean_spread > 0.01,
            "θ̂ should differ across users (mean per-topic std {mean_spread})"
        );
    }

    #[test]
    fn diverse_users_receive_more_diverse_lists() {
        // The Fig. 5 behaviour (RQ5): after training on λ=0.5 feedback,
        // RAPID's re-ranked lists for diverse-preference users must
        // cover more topics than those for focused users, *relative to
        // what the initial lists already offered*.
        let ds = tiny_dataset(26);
        let samples = click_samples(&ds, 450, 6);
        let mut model = Rapid::new(
            &ds,
            RapidConfig {
                epochs: 12,
                ..RapidConfig::probabilistic()
            },
        );
        model.fit(&ds, &samples);

        // Median split of the user population by preference entropy.
        let mut entropies: Vec<f32> = ds.users.iter().map(|u| u.pref_entropy()).collect();
        entropies.sort_by(f32::total_cmp);
        let median = entropies[entropies.len() / 2];

        let mut uplift_diverse = Vec::new();
        let mut uplift_focused = Vec::new();
        for s in &samples[..200] {
            let covs = s.input.coverages(&ds);
            let init_div = rapid_diversity::topic_coverage_at_k(&covs, 5);
            let perm = model.rerank(&ds, &s.input);
            let reordered: Vec<&[f32]> = perm.iter().map(|&p| covs[p]).collect();
            let new_div = rapid_diversity::topic_coverage_at_k(&reordered, 5);
            let uplift = new_div - init_div;
            if ds.users[s.input.user].pref_entropy() > median {
                uplift_diverse.push(uplift);
            } else {
                uplift_focused.push(uplift);
            }
        }
        assert!(!uplift_diverse.is_empty() && !uplift_focused.is_empty());
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        let (md, mf) = (mean(&uplift_diverse), mean(&uplift_focused));
        assert!(
            md > mf,
            "diversity uplift should be larger for diverse users: {md} vs {mf}"
        );
    }

    #[test]
    fn probabilistic_scores_exceed_deterministic_mean() {
        // UCB = mean + std with std > 0 (softplus), so the probabilistic
        // inference score is strictly larger than its own mean head.
        let ds = tiny_dataset(24);
        let samples = click_samples(&ds, 4, 2);
        let model = Rapid::new(&ds, RapidConfig::probabilistic());
        let input = &samples[0].input;
        let prep = PreparedList::from_input(&ds, input.clone());

        let mut tape = Tape::new();
        let fused = model.head_input(&mut tape, &model.store, &ds, &prep);
        let mean = model.head_mean.forward(&mut tape, &model.store, fused);
        let mean_vals = tape.value(mean).as_slice().to_vec();
        let ucb = model.scores(&ds, input);
        for (u, m) in ucb.iter().zip(&mean_vals) {
            assert!(u > m, "UCB {u} must exceed mean {m}");
        }
    }

    #[test]
    fn rnn_ablation_has_fewer_parameters() {
        let ds = tiny_dataset(25);
        let full = Rapid::new(&ds, RapidConfig::probabilistic());
        let rnn = Rapid::new(&ds, RapidConfig::without_diversity());
        assert!(rnn.num_weights() < full.num_weights());
    }
}
