//! The listwise relevance estimator (§III-B): Bi-LSTM by default,
//! transformer for the RAPID-trans ablation.

use rand::Rng;
use rapid_autograd::{ParamId, ParamStore, Tape, Var};
use rapid_data::{Dataset, ItemId, UserId};
use rapid_nn::{BiLstm, Linear, TransformerEncoderLayer};
use rapid_tensor::Matrix;

use crate::config::RelevanceEncoder;

/// Encodes the initial list into per-position context representations
/// `h_{R(i)}` from the item representations `e_i = [x_u, x_v, τ_v]`.
pub struct RelevanceEstimator {
    kind: EncoderKind,
    out_dim: usize,
}

// One estimator holds exactly one variant for its whole life, so the
// size gap between them never costs anything at scale.
#[allow(clippy::large_enum_variant)]
enum EncoderKind {
    BiLstm(BiLstm),
    Transformer {
        proj: Linear,
        pos_embed: ParamId,
        encoder: TransformerEncoderLayer,
    },
}

impl RelevanceEstimator {
    /// Registers the estimator's parameters under `prefix`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        encoder: RelevanceEncoder,
        input_dim: usize,
        hidden: usize,
        max_len: usize,
        rng: &mut impl Rng,
    ) -> Self {
        match encoder {
            RelevanceEncoder::BiLstm => Self {
                kind: EncoderKind::BiLstm(BiLstm::new(
                    store,
                    &format!("{prefix}.bilstm"),
                    input_dim,
                    hidden,
                    rng,
                )),
                out_dim: 2 * hidden,
            },
            RelevanceEncoder::Transformer => Self {
                kind: EncoderKind::Transformer {
                    proj: Linear::new(store, &format!("{prefix}.proj"), input_dim, 2 * hidden, rng),
                    pos_embed: store.add(
                        format!("{prefix}.pos"),
                        Matrix::rand_uniform(max_len, 2 * hidden, -0.05, 0.05, rng),
                    ),
                    encoder: TransformerEncoderLayer::new(
                        store,
                        &format!("{prefix}.enc"),
                        2 * hidden,
                        2,
                        4 * hidden,
                        rng,
                    ),
                },
                out_dim: 2 * hidden,
            },
        }
    }

    /// Output width per position (`2 q_h` for both encoders, so the
    /// re-ranker head is identical across the ablation).
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Builds the item representation matrix `E = [x_u; x_v; τ_v; s_v]`
    /// rows for an ordered list (`s_v` is the initial ranker's score —
    /// part of every re-ranker's item input in this pipeline, RAPID
    /// included, so the comparison stays fair).
    pub fn item_representations(
        ds: &Dataset,
        user: UserId,
        items: &[ItemId],
        init_scores: &[f32],
    ) -> Matrix {
        assert_eq!(
            items.len(),
            init_scores.len(),
            "item_representations: {} items vs {} scores",
            items.len(),
            init_scores.len()
        );
        let xu = &ds.users[user].features;
        let d = xu.len() + ds.items[0].features.len() + ds.num_topics() + 1;
        let mut data = Vec::with_capacity(items.len() * d);
        for (&v, &s) in items.iter().zip(init_scores) {
            data.extend_from_slice(xu);
            data.extend_from_slice(&ds.items[v].features);
            data.extend_from_slice(&ds.items[v].coverage);
            data.push(s);
        }
        Matrix::from_vec(items.len(), d, data)
    }

    /// Expected input width for this dataset.
    pub fn input_dim(ds: &Dataset) -> usize {
        ds.users[0].features.len() + ds.items[0].features.len() + ds.num_topics() + 1
    }

    /// Encodes an `(L, input_dim)` representation matrix into `(L,
    /// out_dim)` context states.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, reps: Var) -> Var {
        match &self.kind {
            EncoderKind::BiLstm(bilstm) => {
                let l = tape.value(reps).rows();
                let steps: Vec<Var> = (0..l).map(|i| tape.slice_rows(reps, i, i + 1)).collect();
                let states = bilstm.forward(tape, store, &steps);
                tape.concat_rows(&states)
            }
            EncoderKind::Transformer {
                proj,
                pos_embed,
                encoder,
            } => {
                let l = tape.value(reps).rows();
                let h = proj.forward(tape, store, reps);
                let pos_all = tape.param(store, *pos_embed);
                let pos = tape.slice_rows(pos_all, 0, l);
                let h = tape.add(h, pos);
                encoder.forward(tape, store, h)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rapid_data::{generate, DataConfig, Flavor};

    fn tiny() -> Dataset {
        let mut c = DataConfig::new(Flavor::Taobao);
        c.num_users = 10;
        c.num_items = 60;
        c.ranker_train_interactions = 50;
        c.rerank_train_requests = 3;
        c.test_requests = 2;
        generate(&c)
    }

    #[test]
    fn both_encoders_produce_same_output_shape() {
        let ds = tiny();
        let d = RelevanceEstimator::input_dim(&ds);
        for kind in [RelevanceEncoder::BiLstm, RelevanceEncoder::Transformer] {
            let mut rng = StdRng::seed_from_u64(0);
            let mut store = ParamStore::new();
            let est = RelevanceEstimator::new(&mut store, "rel", kind, d, 16, 30, &mut rng);
            assert_eq!(est.out_dim(), 32);
            let scores = vec![0.5; ds.test[0].candidates.len()];
            let reps =
                RelevanceEstimator::item_representations(&ds, 0, &ds.test[0].candidates, &scores);
            let mut tape = Tape::new();
            let r = tape.constant(reps);
            let out = est.forward(&mut tape, &store, r);
            assert_eq!(tape.value(out).shape(), (ds.test[0].candidates.len(), 32));
            assert!(tape.value(out).is_finite());
        }
    }

    #[test]
    fn representations_embed_user_item_coverage_and_score() {
        let ds = tiny();
        let scores: Vec<f32> = (0..ds.test[0].candidates.len()).map(|i| i as f32).collect();
        let reps =
            RelevanceEstimator::item_representations(&ds, 2, &ds.test[0].candidates, &scores);
        let qu = ds.users[2].features.len();
        let qv = ds.items[0].features.len();
        let m = ds.num_topics();
        assert_eq!(reps.cols(), qu + qv + m + 1);
        // First block is the (repeated) user features.
        for i in 0..reps.rows() {
            assert_eq!(&reps.row(i)[..qu], &ds.users[2].features[..]);
            // Last column is the init score.
            assert_eq!(reps.get(i, qu + qv + m), i as f32);
        }
        // Coverage block.
        let v0 = ds.test[0].candidates[0];
        assert_eq!(
            &reps.row(0)[qu + qv..qu + qv + m],
            &ds.items[v0].coverage[..]
        );
    }
}
