//! Pluggable submodular diversity functions.
//!
//! The paper notes (§III-C) that its probabilistic coverage function
//! "can be replaced by other submodular diversity functions according
//! to the objective of the recommendation scenario". This module makes
//! that replacement a first-class API: a [`SubmodularCoverage`] trait
//! with the paper's probabilistic coverage plus two widely used
//! alternatives, and a generic marginal-diversity computation over any
//! of them.

/// A monotone submodular, topic-wise coverage function: maps a set of
/// item coverage vectors to an `m`-vector of per-topic coverage levels.
pub trait SubmodularCoverage {
    /// Coverage of a set of items (each a `τ_v ∈ [0,1]^m` slice).
    fn coverage(&self, items: &[&[f32]]) -> Vec<f32>;

    /// Marginal diversity of `idx` within `items` under this function:
    /// `c(R) − c(R \ {R(idx)})`, elementwise (the generalised Eq. 5).
    fn marginal(&self, items: &[&[f32]], idx: usize) -> Vec<f32> {
        assert!(
            idx < items.len(),
            "marginal: idx {idx} out of range for {} items",
            items.len()
        );
        let full = self.coverage(items);
        let without: Vec<&[f32]> = items
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, c)| *c)
            .collect();
        let partial = self.coverage(&without);
        full.iter().zip(&partial).map(|(f, p)| f - p).collect()
    }
}

/// The paper's default (Eq. 4): `c_j(R) = 1 − Π (1 − τ_v^j)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbabilisticCoverage;

impl SubmodularCoverage for ProbabilisticCoverage {
    fn coverage(&self, items: &[&[f32]]) -> Vec<f32> {
        crate::coverage::coverage_vector(items)
    }
}

/// Saturated linear coverage: `c_j(R) = min(1, Σ τ_v^j / s)` — each
/// topic saturates once it has accumulated `s` units of coverage mass.
/// A common choice when a platform wants "at least s items per topic".
#[derive(Debug, Clone, Copy)]
pub struct SaturatedCoverage {
    /// Saturation threshold `s > 0`.
    pub saturation: f32,
}

impl Default for SaturatedCoverage {
    fn default() -> Self {
        Self { saturation: 1.0 }
    }
}

impl SubmodularCoverage for SaturatedCoverage {
    fn coverage(&self, items: &[&[f32]]) -> Vec<f32> {
        let Some(first) = items.first() else {
            return Vec::new();
        };
        let mut mass = vec![0.0f32; first.len()];
        for cov in items {
            for (acc, &c) in mass.iter_mut().zip(*cov) {
                *acc += c.clamp(0.0, 1.0);
            }
        }
        mass.into_iter()
            .map(|x| (x / self.saturation.max(1e-9)).min(1.0))
            .collect()
    }
}

/// Logarithmic coverage: `c_j(R) = ln(1 + Σ τ_v^j) / ln(1 + cap)` —
/// the concave-utility form of Yue & Guestrin's linear submodular
/// bandits, with diminishing (but never saturating) returns.
#[derive(Debug, Clone, Copy)]
pub struct LogCoverage {
    /// Normalisation cap (mass at which coverage reads 1.0).
    pub cap: f32,
}

impl Default for LogCoverage {
    fn default() -> Self {
        Self { cap: 5.0 }
    }
}

impl SubmodularCoverage for LogCoverage {
    fn coverage(&self, items: &[&[f32]]) -> Vec<f32> {
        let Some(first) = items.first() else {
            return Vec::new();
        };
        let denom = (1.0 + self.cap.max(1e-9)).ln();
        let mut mass = vec![0.0f32; first.len()];
        for cov in items {
            for (acc, &c) in mass.iter_mut().zip(*cov) {
                *acc += c.clamp(0.0, 1.0);
            }
        }
        mass.into_iter().map(|x| (1.0 + x).ln() / denom).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_monotone_submodular(
        f: &dyn SubmodularCoverage,
        sets: &[Vec<Vec<f32>>],
        extra: &[f32],
    ) {
        for base in sets {
            let refs: Vec<&[f32]> = base.iter().map(|v| v.as_slice()).collect();
            let before = f.coverage(&refs);
            let mut with = refs.clone();
            with.push(extra);
            let after = f.coverage(&with);
            // Monotone.
            for (b, a) in before.iter().zip(&after) {
                assert!(a >= &(b - 1e-6), "not monotone");
            }
        }
    }

    #[test]
    fn probabilistic_delegates_to_eq4() {
        let a = [0.5f32, 0.0];
        let b = [0.5f32, 1.0];
        let f = ProbabilisticCoverage;
        let c = f.coverage(&[&a, &b]);
        assert!((c[0] - 0.75).abs() < 1e-6);
        assert!((c[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn saturated_caps_at_one() {
        let a = [0.8f32];
        let f = SaturatedCoverage { saturation: 1.0 };
        assert!((f.coverage(&[&a])[0] - 0.8).abs() < 1e-6);
        assert!((f.coverage(&[&a, &a])[0] - 1.0).abs() < 1e-6, "saturates");
        assert!((f.coverage(&[&a, &a, &a])[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_coverage_has_diminishing_returns() {
        let a = [1.0f32];
        let f = LogCoverage::default();
        let g1 = f.coverage(&[&a])[0];
        let g2 = f.coverage(&[&a, &a])[0] - g1;
        let g3 = f.coverage(&[&a, &a, &a])[0] - f.coverage(&[&a, &a])[0];
        assert!(g1 > g2 && g2 > g3, "gains must shrink: {g1} {g2} {g3}");
        assert!(g3 > 0.0, "but never vanish");
    }

    #[test]
    fn marginal_is_zero_for_redundant_items_under_saturation() {
        // Three items each carrying 1.0 mass at saturation 2: removing
        // any one still saturates, so each marginal is 0.
        let a = [1.0f32];
        let f = SaturatedCoverage { saturation: 2.0 };
        let items: Vec<&[f32]> = vec![&a, &a, &a];
        for i in 0..3 {
            assert!(f.marginal(&items, i)[0].abs() < 1e-6);
        }
        // With only two items, each marginal is 0.5 (1.0/2 of the cap).
        let two: Vec<&[f32]> = vec![&a, &a];
        for i in 0..2 {
            assert!((f.marginal(&two, i)[0] - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn all_functions_are_monotone_on_fixed_cases() {
        let sets = [
            vec![vec![0.2f32, 0.8], vec![0.5, 0.5]],
            vec![vec![1.0f32, 0.0]],
            vec![],
        ];
        let extra = [0.7f32, 0.3];
        check_monotone_submodular(&ProbabilisticCoverage, &sets[..2], &extra);
        check_monotone_submodular(&SaturatedCoverage::default(), &sets[..2], &extra);
        check_monotone_submodular(&LogCoverage::default(), &sets[..2], &extra);
    }

    proptest! {
        /// Submodularity of the alternatives: the marginal gain of an
        /// item shrinks as the base set grows.
        #[test]
        fn alternatives_are_submodular(
            base in proptest::collection::vec(
                proptest::collection::vec(0.0f32..=1.0, 3), 1..5),
            more in proptest::collection::vec(0.0f32..=1.0, 3),
            extra in proptest::collection::vec(0.0f32..=1.0, 3),
            saturation in 0.5f32..4.0,
            cap in 1.0f32..8.0,
        ) {
            let functions: Vec<Box<dyn SubmodularCoverage>> = vec![
                Box::new(SaturatedCoverage { saturation }),
                Box::new(LogCoverage { cap }),
            ];
            for f in &functions {
                let small: Vec<&[f32]> = base.iter().map(|v| v.as_slice()).collect();
                let mut big = small.clone();
                big.push(&more);
                let gain = |set: &[&[f32]]| -> Vec<f32> {
                    let before = f.coverage(set);
                    let mut with = set.to_vec();
                    with.push(&extra);
                    let after = f.coverage(&with);
                    after.iter().zip(&before).map(|(a, b)| a - b).collect()
                };
                let g_small = gain(&small);
                let g_big = gain(&big);
                for (s, b) in g_small.iter().zip(&g_big) {
                    prop_assert!(b <= &(s + 1e-5), "submodularity violated");
                }
            }
        }
    }
}
