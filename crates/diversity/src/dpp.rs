//! Determinantal Point Process re-ranking: quality/similarity kernel
//! construction and the fast greedy MAP inference of Chen et al. (2018).

use rapid_tensor::Matrix;

/// A DPP kernel `L = diag(q) · S · diag(q)` where `q` encodes item
/// quality (relevance) and `S` is the coverage-cosine similarity Gram
/// matrix (PSD because it is a Gram matrix of normalised vectors).
#[derive(Debug, Clone)]
pub struct DppKernel {
    l: Matrix,
}

impl DppKernel {
    /// Builds the kernel from per-item relevance scores and coverage
    /// vectors.
    ///
    /// `theta >= 0` trades relevance (large `theta`) against diversity
    /// (small `theta`): `q_i = exp(theta · rel_i)`, the standard
    /// parameterisation from the YouTube DPP paper.
    ///
    /// # Panics
    /// Panics if lengths disagree.
    pub fn from_relevance_and_coverage(
        relevance: &[f32],
        coverages: &[&[f32]],
        theta: f32,
    ) -> Self {
        assert_eq!(
            relevance.len(),
            coverages.len(),
            "DppKernel: {} scores vs {} items",
            relevance.len(),
            coverages.len()
        );
        let n = relevance.len();
        let q: Vec<f32> = relevance.iter().map(|&r| (theta * r).exp()).collect();

        // Normalise coverage vectors; zero vectors stay zero (similar to
        // nothing, dissimilar to everything).
        let normed: Vec<Vec<f32>> = coverages
            .iter()
            .map(|c| {
                let norm: f32 = c.iter().map(|x| x * x).sum::<f32>().sqrt();
                // lint:allow(float-eq) — exact-zero guard before dividing by the norm
                if norm == 0.0 {
                    c.to_vec()
                } else {
                    c.iter().map(|x| x / norm).collect()
                }
            })
            .collect();

        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let sim: f32 = if i == j {
                    1.0
                } else {
                    normed[i].iter().zip(&normed[j]).map(|(a, b)| a * b).sum()
                };
                let v = q[i] * sim * q[j];
                l.set(i, j, v);
                l.set(j, i, v);
            }
        }
        Self { l }
    }

    /// Builds a kernel directly from a full `(n, n)` matrix — used by the
    /// PD-GAN baseline, which *learns* a personalised kernel.
    ///
    /// # Panics
    /// Panics if `l` is not square.
    pub fn from_matrix(l: Matrix) -> Self {
        assert_eq!(l.rows(), l.cols(), "DppKernel: kernel must be square");
        Self { l }
    }

    /// Kernel size.
    pub fn len(&self) -> usize {
        self.l.rows()
    }

    /// `true` for an empty kernel.
    pub fn is_empty(&self) -> bool {
        self.l.rows() == 0
    }

    /// Kernel entry.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.l.get(i, j)
    }
}

/// Fast greedy MAP inference (Chen et al., NeurIPS 2018): selects up to
/// `k` items greedily maximising the log-determinant gain, in `O(k² n)`.
///
/// Maintains, per candidate `i`, the Cholesky row `c_i` against the
/// selected set and the residual `d_i² = log-det gain`. Stops early if
/// every remaining gain is numerically non-positive. Returns selected
/// indices in selection order.
pub fn greedy_map(kernel: &DppKernel, k: usize) -> Vec<usize> {
    let n = kernel.len();
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }

    let mut d2: Vec<f64> = (0..n).map(|i| f64::from(kernel.get(i, i))).collect();
    let mut c: Vec<Vec<f64>> = vec![Vec::with_capacity(k); n];
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    let mut active: Vec<bool> = vec![true; n];

    while selected.len() < k {
        // Pick the active item with the largest residual gain.
        let mut best = None;
        let mut best_gain = 1e-12; // positivity floor
        for i in 0..n {
            if active[i] && d2[i] > best_gain {
                best_gain = d2[i];
                best = Some(i);
            }
        }
        let Some(j) = best else {
            break; // all remaining gains ~0: adding anything is redundant
        };
        active[j] = false;
        selected.push(j);
        let dj = d2[j].sqrt();

        // Update every remaining candidate's Cholesky row and residual.
        let cj = c[j].clone();
        for i in 0..n {
            if !active[i] {
                continue;
            }
            let dot: f64 = cj.iter().zip(&c[i]).map(|(a, b)| a * b).sum();
            let e = (f64::from(kernel.get(j, i)) - dot) / dj;
            c[i].push(e);
            d2[i] -= e * e;
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hot(m: usize, j: usize) -> Vec<f32> {
        let mut v = vec![0.0; m];
        v[j] = 1.0;
        v
    }

    #[test]
    fn kernel_is_symmetric_with_unit_diag_similarity() {
        let rel = [0.5, 0.8];
        let covs = [one_hot(3, 0), one_hot(3, 1)];
        let refs: Vec<&[f32]> = covs.iter().map(|v| v.as_slice()).collect();
        let k = DppKernel::from_relevance_and_coverage(&rel, &refs, 1.0);
        assert_eq!(k.get(0, 1), k.get(1, 0));
        // Diagonal = q_i².
        assert!((k.get(0, 0) - (0.5f32).exp().powi(2)).abs() < 1e-4);
        // Orthogonal topics → off-diagonal 0.
        assert_eq!(k.get(0, 1), 0.0);
    }

    #[test]
    fn greedy_map_prefers_diverse_sets() {
        // Three items: two near-duplicates with high relevance, one
        // different topic with lower relevance. With modest theta the
        // second pick must be the diverse item.
        let rel = [0.9, 0.88, 0.5];
        let covs = [one_hot(2, 0), one_hot(2, 0), one_hot(2, 1)];
        let refs: Vec<&[f32]> = covs.iter().map(|v| v.as_slice()).collect();
        let k = DppKernel::from_relevance_and_coverage(&rel, &refs, 1.0);
        let sel = greedy_map(&k, 2);
        assert_eq!(sel[0], 0);
        assert_eq!(sel[1], 2, "duplicate item must not be picked second");
    }

    #[test]
    fn greedy_map_stops_when_gains_vanish() {
        // Two identical items: after the first, the second has zero
        // residual; asking for 2 returns only 1.
        let rel = [0.5, 0.5];
        let covs = [one_hot(2, 0), one_hot(2, 0)];
        let refs: Vec<&[f32]> = covs.iter().map(|v| v.as_slice()).collect();
        let k = DppKernel::from_relevance_and_coverage(&rel, &refs, 1.0);
        let sel = greedy_map(&k, 2);
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn greedy_map_matches_brute_force_logdet_on_small_case() {
        // Compare the greedy first-two picks against brute-force 2-subset
        // log-det maximisation.
        let rel = [0.2, 0.9, 0.6, 0.4];
        let covs = [
            vec![0.8f32, 0.2, 0.0],
            vec![0.7, 0.3, 0.0],
            vec![0.0, 0.1, 0.9],
            vec![0.3, 0.3, 0.4],
        ];
        let refs: Vec<&[f32]> = covs.iter().map(|v| v.as_slice()).collect();
        let k = DppKernel::from_relevance_and_coverage(&rel, &refs, 2.0);

        let det2 =
            |i: usize, j: usize| -> f32 { k.get(i, i) * k.get(j, j) - k.get(i, j) * k.get(j, i) };
        // Greedy's guarantee is an approximation, but on this easy case
        // it should match the best pair.
        let sel = greedy_map(&k, 2);
        let greedy_det = det2(sel[0], sel[1]);
        let mut best = 0.0f32;
        for i in 0..4 {
            for j in (i + 1)..4 {
                best = best.max(det2(i, j));
            }
        }
        assert!(
            greedy_det >= best * 0.63,
            "greedy det {greedy_det} vs best {best}"
        );
    }

    #[test]
    fn from_matrix_round_trips() {
        let m = Matrix::identity(3);
        let k = DppKernel::from_matrix(m);
        assert_eq!(k.len(), 3);
        let sel = greedy_map(&k, 3);
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn empty_kernel_selects_nothing() {
        let k = DppKernel::from_matrix(Matrix::zeros(0, 0));
        assert!(greedy_map(&k, 5).is_empty());
        assert!(k.is_empty());
    }
}
