//! Sliding Spectrum Decomposition (Huang et al., KDD 2021), simplified.
//!
//! SSD treats the selected prefix as a trajectory of item vectors and
//! scores a candidate by the relevance plus the *volume* it adds to the
//! span of a sliding window of recent selections. The volume increment
//! equals the norm of the candidate's component orthogonal to that span,
//! which we compute by Gram–Schmidt against the window.

/// Greedy SSD selection.
///
/// At each step picks the unselected item maximising
/// `rel(v) + gamma · ‖residual of cov(v) against the last `window`
/// selections‖`, then appends it. Returns a full permutation in rank
/// order.
///
/// # Panics
/// Panics if `relevance` and `vectors` disagree on length or
/// `window == 0`.
pub fn ssd_select(relevance: &[f32], vectors: &[&[f32]], gamma: f32, window: usize) -> Vec<usize> {
    assert_eq!(
        relevance.len(),
        vectors.len(),
        "ssd_select: {} scores vs {} items",
        relevance.len(),
        vectors.len()
    );
    assert!(window > 0, "ssd_select: window must be positive");
    let n = relevance.len();
    let mut selected: Vec<usize> = Vec::with_capacity(n);
    let mut remaining: Vec<usize> = (0..n).collect();
    // Orthonormal basis of the sliding window's span (rebuilt per step;
    // window sizes are tiny).
    while !remaining.is_empty() {
        let start = selected.len().saturating_sub(window);
        let basis = orthonormal_basis(
            &selected[start..]
                .iter()
                .map(|&s| vectors[s])
                .collect::<Vec<_>>(),
        );
        let mut best_pos = 0;
        let mut best_score = f32::NEG_INFINITY;
        for (pos, &cand) in remaining.iter().enumerate() {
            let resid = residual_norm(vectors[cand], &basis);
            let score = relevance[cand] + gamma * resid;
            if score > best_score {
                best_score = score;
                best_pos = pos;
            }
        }
        selected.push(remaining.swap_remove(best_pos));
    }
    selected
}

/// Gram–Schmidt orthonormal basis of the given vectors (near-zero
/// residuals dropped).
fn orthonormal_basis(vectors: &[&[f32]]) -> Vec<Vec<f32>> {
    let mut basis: Vec<Vec<f32>> = Vec::with_capacity(vectors.len());
    for v in vectors {
        let mut r = v.to_vec();
        for b in &basis {
            let dot: f32 = r.iter().zip(b).map(|(x, y)| x * y).sum();
            for (ri, bi) in r.iter_mut().zip(b) {
                *ri -= dot * bi;
            }
        }
        let norm: f32 = r.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-6 {
            for ri in &mut r {
                *ri /= norm;
            }
            basis.push(r);
        }
    }
    basis
}

/// Norm of `v`'s component orthogonal to `basis` (orthonormal).
fn residual_norm(v: &[f32], basis: &[Vec<f32>]) -> f32 {
    let mut r = v.to_vec();
    for b in basis {
        let dot: f32 = r.iter().zip(b).map(|(x, y)| x * y).sum();
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri -= dot * bi;
        }
    }
    r.iter().map(|x| x * x).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn residual_of_spanned_vector_is_zero() {
        let basis = orthonormal_basis(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!(residual_norm(&[3.0, 4.0], &basis) < 1e-5);
    }

    #[test]
    fn residual_of_orthogonal_vector_is_its_norm() {
        let basis = orthonormal_basis(&[&[1.0, 0.0, 0.0]]);
        assert!((residual_norm(&[0.0, 0.0, 2.0], &basis) - 2.0).abs() < 1e-5);
    }

    #[test]
    fn duplicate_vectors_collapse_in_basis() {
        let basis = orthonormal_basis(&[&[1.0, 0.0], &[2.0, 0.0]]);
        assert_eq!(basis.len(), 1);
    }

    #[test]
    fn ssd_promotes_orthogonal_item() {
        let rel = [0.9, 0.85, 0.5];
        let vecs = [vec![1.0f32, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        let order = ssd_select(&rel, &refs, 1.0, 3);
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 2, "orthogonal item should be boosted to rank 2");
    }

    #[test]
    fn window_forgets_old_directions() {
        // With window 1, only the immediately preceding item suppresses
        // similarity; item 1 (duplicate of item 0) can return at rank 3.
        let rel = [0.9, 0.89, 0.5, 0.1];
        let vecs = [
            vec![1.0f32, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.5, 0.5],
        ];
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        let order = ssd_select(&rel, &refs, 0.5, 1);
        // After selecting 0 then 2, the window only contains 2, so the
        // duplicate of 0 is no longer penalised and wins on relevance.
        assert_eq!(&order[..3], &[0, 2, 1]);
    }

    proptest! {
        #[test]
        fn ssd_is_a_permutation(
            rel in proptest::collection::vec(0.0f32..1.0, 1..9),
            gamma in 0.0f32..2.0,
        ) {
            let vecs: Vec<Vec<f32>> = rel.iter().map(|&r| vec![r, 1.0 - r, 0.3]).collect();
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            let mut order = ssd_select(&rel, &refs, gamma, 3);
            order.sort_unstable();
            let expect: Vec<usize> = (0..rel.len()).collect();
            prop_assert_eq!(order, expect);
        }
    }
}
