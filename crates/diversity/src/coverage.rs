//! Probabilistic topic coverage — Eq. (4)–(5) of the paper.

/// Probabilistic coverage of a set of items (Eq. 4):
/// `c_j(R) = 1 − Π_{v∈R} (1 − τ_v^j)`.
///
/// `coverages` holds one `τ_v ∈ [0,1]^m` slice per item; all must share
/// the same length `m`.
///
/// # Panics
/// Panics if coverage vectors disagree on `m`.
pub fn coverage_vector(coverages: &[&[f32]]) -> Vec<f32> {
    let Some(first) = coverages.first() else {
        return Vec::new();
    };
    let m = first.len();
    let mut miss = vec![1.0f32; m];
    for cov in coverages {
        assert_eq!(
            cov.len(),
            m,
            "coverage_vector: inconsistent topic counts ({} vs {m})",
            cov.len()
        );
        for (acc, &c) in miss.iter_mut().zip(*cov) {
            *acc *= 1.0 - c.clamp(0.0, 1.0);
        }
    }
    miss.into_iter().map(|p| 1.0 - p).collect()
}

/// Marginal diversity of item `idx` within the list (Eq. 5):
/// `d_R(R(i)) = c(R) − c(R \ {R(i)})`, elementwise over topics.
///
/// Each element lies in `[0, 1]`: it is the probability that `R(i)` is
/// the *only* item covering that topic.
///
/// # Panics
/// Panics if `idx` is out of range.
pub fn marginal_diversity(coverages: &[&[f32]], idx: usize) -> Vec<f32> {
    assert!(
        idx < coverages.len(),
        "marginal_diversity: idx {idx} out of range for {} items",
        coverages.len()
    );
    let full = coverage_vector(coverages);
    let without: Vec<&[f32]> = coverages
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != idx)
        .map(|(_, c)| *c)
        .collect();
    let partial = coverage_vector(&without);
    full.iter().zip(&partial).map(|(f, p)| f - p).collect()
}

/// Sequential coverage gains `ζ(v_k) = c(S_{1:k}) − c(S_{1:k−1})` for a
/// list processed in order — the novelty signal of the paper's DCM click
/// model (§IV-B1).
///
/// Returns one gain vector per position.
pub fn sequential_gains(coverages: &[&[f32]]) -> Vec<Vec<f32>> {
    let Some(first) = coverages.first() else {
        return Vec::new();
    };
    let m = first.len();
    let mut miss = vec![1.0f32; m];
    let mut out = Vec::with_capacity(coverages.len());
    for cov in coverages {
        let mut gain = Vec::with_capacity(m);
        for (j, &c) in cov.iter().enumerate() {
            let c = c.clamp(0.0, 1.0);
            let new_miss = miss[j] * (1.0 - c);
            gain.push(miss[j] - new_miss); // = miss_before * c
            miss[j] = new_miss;
        }
        out.push(gain);
    }
    out
}

/// The `div@k` metric (§IV-B2): expected number of covered topics in the
/// top-`k` prefix, `Σ_j c_j(S_{1:k})`.
pub fn topic_coverage_at_k(coverages: &[&[f32]], k: usize) -> f32 {
    let k = k.min(coverages.len());
    coverage_vector(&coverages[..k]).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn coverage_of_empty_set_is_empty() {
        assert!(coverage_vector(&[]).is_empty());
    }

    #[test]
    fn coverage_of_disjoint_one_hots_is_their_union() {
        let a = [1.0, 0.0, 0.0];
        let b = [0.0, 1.0, 0.0];
        assert_eq!(coverage_vector(&[&a, &b]), vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn coverage_is_probabilistic_for_soft_vectors() {
        let a = [0.5, 0.0];
        let b = [0.5, 0.0];
        let c = coverage_vector(&[&a, &b]);
        assert!((c[0] - 0.75).abs() < 1e-6); // 1 − 0.5²
        assert_eq!(c[1], 0.0);
    }

    #[test]
    fn marginal_diversity_is_zero_for_duplicated_item() {
        let a = [1.0, 0.0];
        let b = [1.0, 0.0];
        let d = marginal_diversity(&[&a, &b], 0);
        assert!(d.iter().all(|&x| x.abs() < 1e-6));
    }

    #[test]
    fn marginal_diversity_is_full_for_unique_topic() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let d = marginal_diversity(&[&a, &b], 1);
        assert!((d[1] - 1.0).abs() < 1e-6);
        assert!(d[0].abs() < 1e-6);
    }

    #[test]
    fn sequential_gains_sum_to_total_coverage() {
        let lists: Vec<Vec<f32>> = vec![
            vec![0.5, 0.2, 0.0],
            vec![0.3, 0.9, 0.1],
            vec![0.0, 0.5, 0.5],
        ];
        let refs: Vec<&[f32]> = lists.iter().map(|v| v.as_slice()).collect();
        let gains = sequential_gains(&refs);
        let total = coverage_vector(&refs);
        for j in 0..3 {
            let sum: f32 = gains.iter().map(|g| g[j]).sum();
            assert!((sum - total[j]).abs() < 1e-6, "topic {j}");
        }
    }

    #[test]
    fn div_at_k_truncates() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert_eq!(topic_coverage_at_k(&[&a, &b], 1), 1.0);
        assert_eq!(topic_coverage_at_k(&[&a, &b], 2), 2.0);
        assert_eq!(topic_coverage_at_k(&[&a, &b], 99), 2.0);
    }

    proptest! {
        /// Coverage is monotone: adding an item never decreases any
        /// element.
        #[test]
        fn coverage_is_monotone(
            items in proptest::collection::vec(
                proptest::collection::vec(0.0f32..=1.0, 4), 1..8),
            extra in proptest::collection::vec(0.0f32..=1.0, 4),
        ) {
            let refs: Vec<&[f32]> = items.iter().map(|v| v.as_slice()).collect();
            let before = coverage_vector(&refs);
            let mut with: Vec<&[f32]> = refs.clone();
            with.push(&extra);
            let after = coverage_vector(&with);
            for (b, a) in before.iter().zip(&after) {
                prop_assert!(a >= &(b - 1e-6));
            }
        }

        /// Coverage is submodular: the gain of adding `extra` to a
        /// superset is no larger than adding it to a subset.
        #[test]
        fn coverage_is_submodular(
            base in proptest::collection::vec(
                proptest::collection::vec(0.0f32..=1.0, 3), 1..6),
            more in proptest::collection::vec(0.0f32..=1.0, 3),
            extra in proptest::collection::vec(0.0f32..=1.0, 3),
        ) {
            let small: Vec<&[f32]> = base.iter().map(|v| v.as_slice()).collect();
            let mut big = small.clone();
            big.push(&more);

            let gain = |set: &[&[f32]]| -> Vec<f32> {
                let before = coverage_vector(set);
                let mut with = set.to_vec();
                with.push(&extra);
                let after = coverage_vector(&with);
                after.iter().zip(&before).map(|(a, b)| a - b).collect()
            };
            let g_small = gain(&small);
            let g_big = gain(&big);
            for (s, b) in g_small.iter().zip(&g_big) {
                prop_assert!(b <= &(s + 1e-5));
            }
        }

        /// Marginal diversity entries stay in [0, 1].
        #[test]
        fn marginal_diversity_bounded(
            items in proptest::collection::vec(
                proptest::collection::vec(0.0f32..=1.0, 3), 1..6),
        ) {
            let refs: Vec<&[f32]> = items.iter().map(|v| v.as_slice()).collect();
            for idx in 0..refs.len() {
                let d = marginal_diversity(&refs, idx);
                for v in d {
                    prop_assert!((-1e-5..=1.0 + 1e-5).contains(&v));
                }
            }
        }

        /// Gains at every position are non-negative and bounded by the
        /// item's own coverage.
        #[test]
        fn sequential_gains_bounded(
            items in proptest::collection::vec(
                proptest::collection::vec(0.0f32..=1.0, 3), 1..6),
        ) {
            let refs: Vec<&[f32]> = items.iter().map(|v| v.as_slice()).collect();
            let gains = sequential_gains(&refs);
            for (g, item) in gains.iter().zip(&refs) {
                for (gv, iv) in g.iter().zip(*item) {
                    prop_assert!(*gv >= -1e-6);
                    prop_assert!(*gv <= iv + 1e-6);
                }
            }
        }
    }
}
