//! Maximal Marginal Relevance (Carbonell & Goldstein, 1998).

/// Greedy MMR selection.
///
/// Repeatedly picks the unselected item maximising
/// `λ · rel(v) − (1 − λ) · max_{s ∈ selected} sim(v, s)`,
/// where `sim` is the cosine similarity of topic-coverage vectors.
/// Returns the selected indices in rank order (all items, i.e. a full
/// permutation of `0..n`).
///
/// `lambda = 1` reduces to sorting by relevance; `lambda = 0` is pure
/// novelty.
///
/// # Panics
/// Panics if `relevance` and `coverages` disagree on length.
pub fn mmr_select(relevance: &[f32], coverages: &[&[f32]], lambda: f32) -> Vec<usize> {
    assert_eq!(
        relevance.len(),
        coverages.len(),
        "mmr_select: {} scores vs {} items",
        relevance.len(),
        coverages.len()
    );
    let n = relevance.len();
    let mut selected: Vec<usize> = Vec::with_capacity(n);
    let mut remaining: Vec<usize> = (0..n).collect();

    while !remaining.is_empty() {
        let mut best_pos = 0;
        let mut best_score = f32::NEG_INFINITY;
        for (pos, &cand) in remaining.iter().enumerate() {
            let max_sim = selected
                .iter()
                .map(|&s| cosine(coverages[cand], coverages[s]))
                .fold(0.0f32, f32::max);
            let score = lambda * relevance[cand] - (1.0 - lambda) * max_sim;
            if score > best_score {
                best_score = score;
                best_pos = pos;
            }
        }
        selected.push(remaining.swap_remove(best_pos));
    }
    selected
}

/// Cosine similarity; zero vectors yield 0.
pub(crate) fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    // lint:allow(float-eq) — exact-zero guard before dividing by the norms
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lambda_one_is_relevance_sort() {
        let rel = [0.1, 0.9, 0.5];
        let covs: Vec<Vec<f32>> = vec![vec![1.0, 0.0]; 3];
        let refs: Vec<&[f32]> = covs.iter().map(|v| v.as_slice()).collect();
        assert_eq!(mmr_select(&rel, &refs, 1.0), vec![1, 2, 0]);
    }

    #[test]
    fn low_lambda_interleaves_topics() {
        // Two near-duplicate relevant items from topic 0 and one slightly
        // less relevant item from topic 1: with diversity pressure the
        // topic-1 item must move up to rank 2.
        let rel = [0.9, 0.85, 0.6];
        let covs = [vec![1.0f32, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        let refs: Vec<&[f32]> = covs.iter().map(|v| v.as_slice()).collect();
        let order = mmr_select(&rel, &refs, 0.4);
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 2, "diverse item should rank second");
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    proptest! {
        /// MMR always returns a permutation of the input indices.
        #[test]
        fn mmr_is_a_permutation(
            rel in proptest::collection::vec(0.0f32..1.0, 1..10),
            lambda in 0.0f32..=1.0,
        ) {
            let covs: Vec<Vec<f32>> = rel.iter().map(|&r| vec![r, 1.0 - r]).collect();
            let refs: Vec<&[f32]> = covs.iter().map(|v| v.as_slice()).collect();
            let mut order = mmr_select(&rel, &refs, lambda);
            order.sort_unstable();
            let expect: Vec<usize> = (0..rel.len()).collect();
            prop_assert_eq!(order, expect);
        }
    }
}
