//! Diversity machinery: submodular topic coverage, marginal diversity,
//! and the classical diversification algorithms the paper compares
//! against.
//!
//! * [`coverage`] — the probabilistic coverage function of Eq. (4), the
//!   marginal diversity of Eq. (5), and the sequential coverage gains
//!   `ζ` used by the click model.
//! * [`mmr`] — Maximal Marginal Relevance greedy selection.
//! * [`dpp`] — Determinantal Point Process kernel construction and the
//!   fast greedy MAP inference of Chen et al. (2018).
//! * [`ssd`] — a sliding-window spectrum decomposition re-ranker in the
//!   spirit of Huang et al. (2021): items are scored by relevance plus
//!   the orthogonal residual they add to the span of a sliding window of
//!   previously selected items.
//! * [`entropy`] — the history-entropy diversity propensity used by the
//!   adpMMR baseline (Di Noia et al., 2014).
//!
//! Everything here is deterministic pure math over coverage vectors and
//! relevance scores — no model training.

pub mod coverage;
pub mod dpp;
pub mod entropy;
pub mod mmr;
pub mod ssd;
pub mod submodular;

pub use coverage::{coverage_vector, marginal_diversity, sequential_gains, topic_coverage_at_k};
pub use dpp::{greedy_map, DppKernel};
pub use entropy::history_entropy_propensity;
pub use mmr::mmr_select;
pub use ssd::ssd_select;
pub use submodular::{LogCoverage, ProbabilisticCoverage, SaturatedCoverage, SubmodularCoverage};
