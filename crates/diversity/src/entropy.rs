//! History-entropy diversity propensity (Di Noia et al., RecSys 2014) —
//! the rule-based personalization signal of the adpMMR baseline.

/// Computes a user's propensity toward diversity from the topic
/// distribution of their behavior history: the normalised entropy of the
/// per-topic interaction mass, scaled by a saturating profile-length
/// factor (longer profiles give more confident estimates).
///
/// `history_coverages` holds the coverage vector of each history item.
/// Returns a value in `[0, 1]`; an empty history returns `0.5`
/// (uninformative prior).
pub fn history_entropy_propensity(history_coverages: &[&[f32]]) -> f32 {
    let Some(first) = history_coverages.first() else {
        return 0.5;
    };
    let m = first.len();
    if m < 2 {
        return 0.0;
    }
    let mut mass = vec![0.0f32; m];
    for cov in history_coverages {
        for (acc, &c) in mass.iter_mut().zip(*cov) {
            *acc += c;
        }
    }
    let total: f32 = mass.iter().sum();
    if total <= 0.0 {
        return 0.5;
    }
    let entropy: f32 = mass
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| {
            let q = p / total;
            -q * q.ln()
        })
        .sum();
    let normalised = entropy / (m as f32).ln();
    // Saturating confidence in the profile length (half-saturation at 10
    // interactions).
    let confidence = history_coverages.len() as f32 / (history_coverages.len() as f32 + 10.0);
    (normalised * (0.5 + 0.5 * confidence)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_is_uninformative() {
        assert_eq!(history_entropy_propensity(&[]), 0.5);
    }

    #[test]
    fn focused_history_has_low_propensity() {
        let cov = [1.0f32, 0.0, 0.0];
        let hist: Vec<&[f32]> = vec![&cov; 20];
        assert!(history_entropy_propensity(&hist) < 0.05);
    }

    #[test]
    fn diverse_history_has_high_propensity() {
        let a = [1.0f32, 0.0, 0.0];
        let b = [0.0f32, 1.0, 0.0];
        let c = [0.0f32, 0.0, 1.0];
        let mut hist: Vec<&[f32]> = Vec::new();
        for _ in 0..10 {
            hist.push(&a);
            hist.push(&b);
            hist.push(&c);
        }
        assert!(history_entropy_propensity(&hist) > 0.8);
    }

    #[test]
    fn longer_profiles_increase_confidence() {
        let a = [0.5f32, 0.5];
        let short: Vec<&[f32]> = vec![&a; 2];
        let long: Vec<&[f32]> = vec![&a; 50];
        assert!(history_entropy_propensity(&long) > history_entropy_propensity(&short));
    }
}
