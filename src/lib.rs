//! # RAPID — Personalized Diversification for Neural Re-ranking
//!
//! A from-scratch Rust reproduction of *"Personalized Diversification for
//! Neural Re-ranking in Recommendation"* (Liu, Xi, et al., ICDE 2023).
//!
//! This umbrella crate re-exports the workspace's public API. See
//! `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.
//!
//! The individual crates:
//!
//! * [`tensor`] — dense `f32` matrices.
//! * [`autograd`] — tape-based reverse-mode autodiff, optimizers, losses.
//! * [`nn`] — layers: linear/MLP, LSTM/Bi-LSTM, GRU, attention, transformer.
//! * [`data`] — synthetic dataset generators (Taobao-like, MovieLens-like,
//!   AppStore-like), behavior histories, feature construction.
//! * [`click`] — dependent click model (DCM) simulation and estimation.
//! * [`diversity`] — submodular topic coverage, marginal diversity, MMR,
//!   DPP, SSD.
//! * [`gbdt`] — gradient-boosted regression trees (LambdaMART substrate).
//! * [`exec`] — execution layer: prepared feature pipeline
//!   ([`exec::PreparedList`], [`exec::FeatureCache`]) and scoped-thread
//!   parallel maps.
//! * [`rankers`] — initial rankers: DIN, SVMRank, LambdaMART.
//! * [`rerankers`] — all ten baseline re-rankers from the paper.
//! * [`core`] — the RAPID model itself with both output heads and
//!   ablation variants.
//! * [`bandit`] — the linear-DCM bandit used for the regret analysis.
//! * [`metrics`] — click/ndcg/div/satis/rev@k and significance tests.
//! * [`eval`] — the end-to-end experiment pipeline.
//! * [`obs`] — dependency-free telemetry: counters, gauges, histograms,
//!   RAII spans, leveled events, NDJSON export.
//! * [`faults`] — deterministic fault injection (`RAPID_FAULTS`) for
//!   chaos-testing crash recovery and graceful degradation.

pub use rapid_autograd as autograd;
pub use rapid_bandit as bandit;
pub use rapid_click as click;
pub use rapid_core as core;
pub use rapid_data as data;
pub use rapid_diversity as diversity;
pub use rapid_eval as eval;
pub use rapid_exec as exec;
pub use rapid_faults as faults;
pub use rapid_gbdt as gbdt;
pub use rapid_metrics as metrics;
pub use rapid_nn as nn;
pub use rapid_obs as obs;
pub use rapid_rankers as rankers;
pub use rapid_rerankers as rerankers;
pub use rapid_tensor as tensor;
